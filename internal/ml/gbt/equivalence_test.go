package gbt

// Golden-equivalence tests: the presorted, bitmap-partitioned, parallel
// split search must produce bit-identical ensembles to the naive
// reference finder (refGrow) — same feature, threshold, weight, and gain
// at every node, same importances, same predictions. Not "close": equal.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ml/dataset"
)

// equivDataset builds a seeded dataset; quantize > 0 snaps feature values
// onto a coarse grid so that columns are riddled with exact ties, the
// case where an unstable candidate order would diverge first.
func equivDataset(t *testing.T, n, p int, seed int64, quantize float64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			v := rng.Float64()*10 - 5
			if quantize > 0 {
				v = math.Round(v/quantize) * quantize
			}
			row[j] = v
		}
		x[i] = row
		y[i] = row[0] - 2*row[p-1] + rng.NormFloat64()
	}
	d, err := dataset.New(names, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// assertModelsIdentical compares two ensembles structurally, field by
// field, and fails on the first differing node.
func assertModelsIdentical(t *testing.T, got, want *Model) {
	t.Helper()
	if got.Base != want.Base {
		t.Fatalf("Base differs: %v vs %v", got.Base, want.Base)
	}
	if len(got.trees) != len(want.trees) {
		t.Fatalf("tree count differs: %d vs %d", len(got.trees), len(want.trees))
	}
	for ti := range got.trees {
		g, w := got.trees[ti].nodes, want.trees[ti].nodes
		if len(g) != len(w) {
			t.Fatalf("tree %d: node count %d vs %d", ti, len(g), len(w))
		}
		for ni := range g {
			if g[ni] != w[ni] {
				t.Fatalf("tree %d node %d differs:\noptimized: %+v\nreference: %+v", ti, ni, g[ni], w[ni])
			}
		}
	}
	if !reflect.DeepEqual(got.Importance(), want.Importance()) {
		t.Fatalf("importances differ:\noptimized: %v\nreference: %v", got.Importance(), want.Importance())
	}
}

func TestOptimizedMatchesReference(t *testing.T) {
	cases := []struct {
		name     string
		n, p     int
		seed     int64
		quantize float64
		mutate   func(*Params)
	}{
		{name: "continuous defaults", n: 400, p: 6, seed: 1},
		{name: "heavy ties", n: 400, p: 5, seed: 2, quantize: 2.0},
		{name: "all ties one column", n: 300, p: 4, seed: 3, quantize: 10.0},
		{name: "no subsampling", n: 350, p: 5, seed: 4, mutate: func(p *Params) {
			p.SubsampleRows = 1
			p.SubsampleCols = 1
		}},
		{name: "row and column subsampling", n: 500, p: 8, seed: 5, mutate: func(p *Params) {
			p.SubsampleRows = 0.6
			p.SubsampleCols = 0.5
		}},
		{name: "deep trees", n: 300, p: 4, seed: 6, mutate: func(p *Params) { p.MaxDepth = 8 }},
		{name: "gamma pruning", n: 300, p: 4, seed: 7, quantize: 1.0, mutate: func(p *Params) { p.Gamma = 0.5 }},
		{name: "min child weight", n: 300, p: 4, seed: 8, mutate: func(p *Params) { p.MinChildWeight = 25 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := equivDataset(t, tc.n, tc.p, tc.seed, tc.quantize)
			p := DefaultParams()
			p.Rounds = 30
			p.Seed = tc.seed * 11
			if tc.mutate != nil {
				tc.mutate(&p)
			}
			opt, err := train(d, p, false)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := train(d, p, true)
			if err != nil {
				t.Fatal(err)
			}
			assertModelsIdentical(t, opt, ref)

			probe := equivDataset(t, 50, tc.p, tc.seed+1000, tc.quantize)
			po, err := opt.PredictAll(probe)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := ref.PredictAll(probe)
			if err != nil {
				t.Fatal(err)
			}
			for i := range po {
				if po[i] != pr[i] {
					t.Fatalf("prediction %d differs: %v vs %v", i, po[i], pr[i])
				}
			}
		})
	}
}

// TestWorkerCountInvariance pins the determinism contract of the parallel
// split search: any worker count yields the ensemble the serial scan does.
func TestWorkerCountInvariance(t *testing.T) {
	d := equivDataset(t, 400, 9, 77, 0.5)
	base := DefaultParams()
	base.Rounds = 25
	var serial *Model
	for _, workers := range []int{1, 2, 3, 8, 32} {
		p := base
		p.Workers = workers
		m, err := Train(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if serial == nil {
			serial = m
			continue
		}
		assertModelsIdentical(t, m, serial)
	}
}

// TestReferenceModeStillLearns guards the reference path itself against
// rot: it must remain a working trainer, not just dead weight.
func TestReferenceModeStillLearns(t *testing.T) {
	d := equivDataset(t, 400, 3, 13, 0)
	p := DefaultParams()
	p.Rounds = 40
	m, err := train(d, p, true)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, 3)
	probe[0] = 3
	probe[2] = 1
	got, err := m.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(3-2*1)) > 1.5 {
		t.Errorf("reference model Predict = %g, want ~1", got)
	}
}
