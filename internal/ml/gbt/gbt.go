// Package gbt implements gradient-boosted regression trees with the
// regularized objective of XGBoost (Chen & Guestrin 2016), the nonlinear
// model the paper uses throughout §5.2–§5.5: at each round a new decision
// tree is fitted to the gradient of the loss on the current ensemble's
// predictions, leaf weights are shrunk by a learning rate, and the
// regularization terms λ (L2 on leaf weights) and γ (per-leaf penalty)
// control complexity. Splits are found by the exact greedy algorithm:
// every feature, every cut point, maximizing the structure-score gain
//
//	gain = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
//
// For squared-error loss the gradient is (ŷ−y) and the hessian is 1.
// Feature importance is the total gain contributed by each feature across
// all splits, averaged over trees — exactly the importance Figure 12 plots.
//
// # Performance
//
// The exact greedy search is implemented with per-feature presorting:
// every feature column is argsorted once per Train (ties broken by row
// index, so the order is a deterministic total order), and tree growth
// partitions those sorted index lists against a left/right membership
// bitmap instead of re-sorting at every node. Split scans across features
// run on a bounded worker pool; the winning split is reduced in feature
// order with a strict-improvement rule, so the lowest feature index wins
// on equal gain no matter how many workers ran. Trees are flat arrays of
// nodes in pre-order (the same layout the JSON serialization uses), which
// keeps Predict's pointer chasing inside one cache-friendly slice.
//
// The naive per-node sorting search is retained as refGrow and exercised
// by the equivalence tests: both paths visit candidate splits in the same
// deterministic order and accumulate gradient sums in the same sequence,
// so they produce bit-identical trees, predictions, and importances.
//
// A third path, selected with Params.Bins > 0, quantizes features into at
// most 256 bins and searches splits over per-bin gradient histograms (see
// hist.go): deterministic, much faster, and within tolerance of — but not
// bit-identical to — the exact search. Batch inference runs over a flat
// structure-of-arrays forest with pool-parallel row batches (forest.go).
package gbt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ml/dataset"
	"repro/internal/obs"
	"repro/internal/pool"
)

// ErrNotTrained is returned when prediction is attempted before training.
var ErrNotTrained = errors.New("gbt: model not trained")

// Params configures training. Zero values are replaced by defaults (see
// DefaultParams).
type Params struct {
	Rounds         int     // number of boosting rounds (trees)
	MaxDepth       int     // maximum tree depth
	LearningRate   float64 // shrinkage η applied to each tree's leaf weights
	Lambda         float64 // L2 regularization on leaf weights
	Gamma          float64 // minimum gain required to keep a split
	MinChildWeight float64 // minimum hessian sum per child (≈ min samples)
	SubsampleRows  float64 // fraction of rows sampled per tree (0,1]
	SubsampleCols  float64 // fraction of features considered per tree (0,1]
	Seed           int64   // RNG seed for subsampling
	Workers        int     // split-search goroutines (0 = GOMAXPROCS)

	// Bins selects the split-search algorithm. 0 (the default) is the
	// exact presorted search, the golden reference path. 2..256 quantizes
	// every feature into at most Bins quantile bins once per training run
	// and searches splits over per-bin gradient histograms with the
	// parent-minus-child subtraction trick (see hist.go) — the same
	// trade XGBoost's hist method makes: typically >2x faster, results
	// within tolerance of exact but not bit-identical to it.
	Bins int

	// Metrics, when non-nil, receives training telemetry: trees built,
	// per-tree build-time histogram, and cumulative split-search time.
	// It never influences the fitted model, and the nil default costs
	// nothing on the training hot path.
	Metrics *obs.Registry
}

// DefaultParams returns the configuration used by the reproduction's
// experiments: 150 rounds of depth-4 trees with η=0.1, λ=1.
func DefaultParams() Params {
	return Params{
		Rounds:         150,
		MaxDepth:       4,
		LearningRate:   0.1,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		SubsampleRows:  0.9,
		SubsampleCols:  1.0,
		Seed:           1,
	}
}

func (p *Params) fillDefaults() {
	d := DefaultParams()
	if p.Rounds <= 0 {
		p.Rounds = d.Rounds
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = d.MaxDepth
	}
	if p.LearningRate <= 0 {
		p.LearningRate = d.LearningRate
	}
	if p.Lambda < 0 {
		p.Lambda = d.Lambda
	}
	if p.MinChildWeight <= 0 {
		p.MinChildWeight = d.MinChildWeight
	}
	if p.SubsampleRows <= 0 || p.SubsampleRows > 1 {
		p.SubsampleRows = d.SubsampleRows
	}
	if p.SubsampleCols <= 0 || p.SubsampleCols > 1 {
		p.SubsampleCols = d.SubsampleCols
	}
	if p.Workers <= 0 {
		p.Workers = pool.Workers()
	}
	if p.Bins < 0 {
		p.Bins = 0
	}
}

// node is one tree node in the flat pre-order layout; leaves have
// feature == -1 and child indices 0.
type node struct {
	threshold float64 // go left when x[feature] <= threshold
	weight    float64 // leaf output (already scaled by η)
	gain      float64 // split gain (for importance)
	feature   int32   // split feature index, -1 for leaf
	left      int32   // child indices into the tree's node slice
	right     int32
}

// tree is one fitted regression tree: nodes in pre-order, root at 0.
type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	nodes := t.nodes
	i := int32(0)
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.weight
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a fitted boosted ensemble.
type Model struct {
	Base   float64 // initial prediction (mean of training targets)
	Names  []string
	trees  []tree
	flat   *forest  // SoA layout for batch inference (see forest.go)
	code   *cforest // quantized layout for code-space inference (see cforest.go)
	params Params

	// Histogram-training provenance, persisted by Save so a binned model
	// round-trips: the quantization level and the per-feature cut points
	// the trainer derived. Zero/nil for exact-trained models.
	bins int
	cuts [][]float64

	// Accelerated row quantizer over cuts, built once wherever cuts are
	// set (training, deserialization) so every admission-path caller
	// shares the grid tables. Derived state, not persisted.
	quant *dataset.Quantizer
}

// buildQuantizer derives the shared accelerated quantizer from m.cuts.
// Called once per model right after cuts are assigned.
func (m *Model) buildQuantizer() {
	if len(m.cuts) > 0 {
		m.quant = dataset.NewQuantizer(m.cuts).Accelerate()
	}
}

// Bins reports the quantization level the model was trained with
// (0 = exact presorted training).
func (m *Model) Bins() int { return m.bins }

// Train fits a boosted ensemble on d with parameters p. Bins > 0 selects
// histogram-binned training: d is quantized once (dataset.Bin) and trees
// grow over per-bin gradient histograms; Bins = 0 keeps the exact
// presorted search.
func Train(d *dataset.Dataset, p Params) (*Model, error) {
	if p.Bins > 0 {
		bd, err := dataset.Bin(d, p.Bins)
		if err != nil {
			return nil, err
		}
		return TrainBinned(bd, nil, p)
	}
	return train(d, p, false)
}

// train is the shared implementation behind Train and the reference-mode
// training the equivalence tests use.
func train(d *dataset.Dataset, p Params, reference bool) (*Model, error) {
	n := d.Len()
	if n == 0 {
		return nil, dataset.ErrEmpty
	}
	if d.NumFeatures() == 0 {
		return nil, fmt.Errorf("gbt: no features")
	}
	p.fillDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	base := 0.0
	for _, y := range d.Y {
		base += y
	}
	base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}

	m := &Model{Base: base, Names: append([]string(nil), d.Names...), params: p}
	grad := make([]float64, n)
	hess := make([]float64, n)

	b := newBuilder(d.X, d.NumFeatures(), p, reference)

	// With no subsampling the row/column identity lists are loop
	// invariants: compute them once instead of once per round.
	var allRows, allCols []int
	if p.SubsampleRows >= 1 {
		allRows = identity(n)
	}
	if p.SubsampleCols >= 1 {
		allCols = identity(d.NumFeatures())
	}

	// Telemetry instruments; all nil (no-op) when p.Metrics is unset, so
	// the only cost the uninstrumented path pays is the measure branch.
	measure := p.Metrics != nil
	treesBuilt := p.Metrics.Counter("gbt.trees_built")
	splitNS := p.Metrics.Counter("gbt.split_search_ns")
	treeMS := p.Metrics.Histogram("gbt.tree_build_ms", obs.ExpBuckets(0.25, 2, 14))

	m.trees = make([]tree, 0, p.Rounds)
	for round := 0; round < p.Rounds; round++ {
		for i := range grad {
			grad[i] = pred[i] - d.Y[i] // squared loss gradient
			hess[i] = 1
		}
		rows := allRows
		if rows == nil {
			rows = sampleRows(n, p.SubsampleRows, rng)
		}
		cols := allCols
		if cols == nil {
			cols = sampleCols(d.NumFeatures(), p.SubsampleCols, rng)
		}
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		t := b.build(rows, cols, grad, hess)
		if measure {
			treeMS.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
			treesBuilt.Inc()
		}
		m.trees = append(m.trees, t)
		for i, row := range d.X {
			pred[i] += t.predict(row)
		}
	}
	if measure {
		splitNS.Add(b.splitNS)
	}
	m.buildFlat()
	return m, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sampleRows draws a sorted subset of row indices; callers handle the
// frac >= 1 identity case (no RNG draw) themselves.
func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := append([]int(nil), perm[:k]...)
	sort.Ints(rows)
	return rows
}

// sampleCols draws a sorted subset of feature indices; callers handle the
// frac >= 1 identity case (no RNG draw) themselves.
func sampleCols(p int, frac float64, rng *rand.Rand) []int {
	k := int(frac * float64(p))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(p)
	cols := append([]int(nil), perm[:k]...)
	sort.Ints(cols)
	return cols
}

// NumTrees returns the number of trees in the ensemble.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict returns the ensemble prediction for one feature vector.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(m.trees) == 0 {
		return 0, ErrNotTrained
	}
	if len(x) != len(m.Names) {
		return 0, fmt.Errorf("gbt: feature vector has %d entries, want %d", len(x), len(m.Names))
	}
	out := m.Base
	for i := range m.trees {
		out += m.trees[i].predict(x)
	}
	return out, nil
}

// Importance returns per-feature importance as the total split gain
// attributed to each feature across all trees, normalized to sum to 1
// (zero map entries are omitted). This mirrors XGBoost's "gain" importance
// used in Figure 12.
func (m *Model) Importance() map[string]float64 {
	raw := make([]float64, len(m.Names))
	for ti := range m.trees {
		for _, n := range m.trees[ti].nodes {
			if n.feature >= 0 {
				raw[n.feature] += n.gain
			}
		}
	}
	var total float64
	for _, v := range raw {
		total += v
	}
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	for j, v := range raw {
		if v > 0 {
			out[m.Names[j]] = v / total
		}
	}
	return out
}
