// Package gbt implements gradient-boosted regression trees with the
// regularized objective of XGBoost (Chen & Guestrin 2016), the nonlinear
// model the paper uses throughout §5.2–§5.5: at each round a new decision
// tree is fitted to the gradient of the loss on the current ensemble's
// predictions, leaf weights are shrunk by a learning rate, and the
// regularization terms λ (L2 on leaf weights) and γ (per-leaf penalty)
// control complexity. Splits are found by the exact greedy algorithm:
// every feature, every cut point, maximizing the structure-score gain
//
//	gain = ½·[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ
//
// For squared-error loss the gradient is (ŷ−y) and the hessian is 1.
// Feature importance is the total gain contributed by each feature across
// all splits, averaged over trees — exactly the importance Figure 12 plots.
package gbt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ml/dataset"
)

// ErrNotTrained is returned when prediction is attempted before training.
var ErrNotTrained = errors.New("gbt: model not trained")

// Params configures training. Zero values are replaced by defaults (see
// DefaultParams).
type Params struct {
	Rounds         int     // number of boosting rounds (trees)
	MaxDepth       int     // maximum tree depth
	LearningRate   float64 // shrinkage η applied to each tree's leaf weights
	Lambda         float64 // L2 regularization on leaf weights
	Gamma          float64 // minimum gain required to keep a split
	MinChildWeight float64 // minimum hessian sum per child (≈ min samples)
	SubsampleRows  float64 // fraction of rows sampled per tree (0,1]
	SubsampleCols  float64 // fraction of features considered per tree (0,1]
	Seed           int64   // RNG seed for subsampling
}

// DefaultParams returns the configuration used by the reproduction's
// experiments: 150 rounds of depth-4 trees with η=0.1, λ=1.
func DefaultParams() Params {
	return Params{
		Rounds:         150,
		MaxDepth:       4,
		LearningRate:   0.1,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		SubsampleRows:  0.9,
		SubsampleCols:  1.0,
		Seed:           1,
	}
}

func (p *Params) fillDefaults() {
	d := DefaultParams()
	if p.Rounds <= 0 {
		p.Rounds = d.Rounds
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = d.MaxDepth
	}
	if p.LearningRate <= 0 {
		p.LearningRate = d.LearningRate
	}
	if p.Lambda < 0 {
		p.Lambda = d.Lambda
	}
	if p.MinChildWeight <= 0 {
		p.MinChildWeight = d.MinChildWeight
	}
	if p.SubsampleRows <= 0 || p.SubsampleRows > 1 {
		p.SubsampleRows = d.SubsampleRows
	}
	if p.SubsampleCols <= 0 || p.SubsampleCols > 1 {
		p.SubsampleCols = d.SubsampleCols
	}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int     // split feature index, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      *node
	right     *node
	weight    float64 // leaf output (already scaled by η)
	gain      float64 // split gain (for importance)
}

// tree is one fitted regression tree.
type tree struct{ root *node }

func (t *tree) predict(x []float64) float64 {
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.weight
}

// Model is a fitted boosted ensemble.
type Model struct {
	Base   float64 // initial prediction (mean of training targets)
	Names  []string
	trees  []*tree
	params Params
}

// Train fits a boosted ensemble on d with parameters p.
func Train(d *dataset.Dataset, p Params) (*Model, error) {
	n := d.Len()
	if n == 0 {
		return nil, dataset.ErrEmpty
	}
	if d.NumFeatures() == 0 {
		return nil, fmt.Errorf("gbt: no features")
	}
	p.fillDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	base := 0.0
	for _, y := range d.Y {
		base += y
	}
	base /= float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}

	m := &Model{Base: base, Names: append([]string(nil), d.Names...), params: p}
	grad := make([]float64, n)
	hess := make([]float64, n)

	b := &builder{d: d, p: p}
	for round := 0; round < p.Rounds; round++ {
		for i := range grad {
			grad[i] = pred[i] - d.Y[i] // squared loss gradient
			hess[i] = 1
		}
		rows := sampleRows(n, p.SubsampleRows, rng)
		cols := sampleCols(d.NumFeatures(), p.SubsampleCols, rng)
		t := b.build(rows, cols, grad, hess)
		m.trees = append(m.trees, t)
		for i, row := range d.X {
			pred[i] += t.predict(row)
		}
	}
	return m, nil
}

func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	rows := append([]int(nil), perm[:k]...)
	sort.Ints(rows)
	return rows
}

func sampleCols(p int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		out := make([]int, p)
		for i := range out {
			out[i] = i
		}
		return out
	}
	k := int(frac * float64(p))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(p)
	cols := append([]int(nil), perm[:k]...)
	sort.Ints(cols)
	return cols
}

// builder holds per-training-run state for tree construction.
type builder struct {
	d *dataset.Dataset
	p Params
}

// build grows one tree on the given row subset using only the given columns.
func (b *builder) build(rows, cols []int, grad, hess []float64) *tree {
	root := b.grow(rows, cols, grad, hess, 0)
	return &tree{root: root}
}

func (b *builder) grow(rows, cols []int, grad, hess []float64, depth int) *node {
	var gSum, hSum float64
	for _, i := range rows {
		gSum += grad[i]
		hSum += hess[i]
	}
	leaf := func() *node {
		return &node{feature: -1, weight: -gSum / (hSum + b.p.Lambda) * b.p.LearningRate}
	}
	if depth >= b.p.MaxDepth || len(rows) < 2 {
		return leaf()
	}

	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	parentScore := gSum * gSum / (hSum + b.p.Lambda)

	order := make([]int, len(rows))
	for _, f := range cols {
		copy(order, rows)
		x := b.d.X
		sort.Slice(order, func(a, c int) bool { return x[order[a]][f] < x[order[c]][f] })

		var gl, hl float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			gl += grad[i]
			hl += hess[i]
			// Can't split between equal feature values.
			if x[order[k]][f] == x[order[k+1]][f] {
				continue
			}
			gr := gSum - gl
			hr := hSum - hl
			if hl < b.p.MinChildWeight || hr < b.p.MinChildWeight {
				continue
			}
			gain := 0.5*(gl*gl/(hl+b.p.Lambda)+gr*gr/(hr+b.p.Lambda)-parentScore) - b.p.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (x[order[k]][f] + x[order[k+1]][f]) / 2
			}
		}
	}

	if bestFeat < 0 {
		return leaf()
	}

	var leftRows, rightRows []int
	for _, i := range rows {
		if b.d.X[i][bestFeat] <= bestThresh {
			leftRows = append(leftRows, i)
		} else {
			rightRows = append(rightRows, i)
		}
	}
	if len(leftRows) == 0 || len(rightRows) == 0 {
		return leaf()
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		gain:      bestGain,
		left:      b.grow(leftRows, cols, grad, hess, depth+1),
		right:     b.grow(rightRows, cols, grad, hess, depth+1),
	}
}

// NumTrees returns the number of trees in the ensemble.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict returns the ensemble prediction for one feature vector.
func (m *Model) Predict(x []float64) (float64, error) {
	if len(m.trees) == 0 {
		return 0, ErrNotTrained
	}
	if len(x) != len(m.Names) {
		return 0, fmt.Errorf("gbt: feature vector has %d entries, want %d", len(x), len(m.Names))
	}
	out := m.Base
	for _, t := range m.trees {
		out += t.predict(x)
	}
	return out, nil
}

// PredictAll returns predictions for every row of d.
func (m *Model) PredictAll(d *dataset.Dataset) ([]float64, error) {
	out := make([]float64, d.Len())
	for i, row := range d.X {
		v, err := m.Predict(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Importance returns per-feature importance as the total split gain
// attributed to each feature across all trees, normalized to sum to 1
// (zero map entries are omitted). This mirrors XGBoost's "gain" importance
// used in Figure 12.
func (m *Model) Importance() map[string]float64 {
	raw := make([]float64, len(m.Names))
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.feature < 0 {
			return
		}
		raw[n.feature] += n.gain
		walk(n.left)
		walk(n.right)
	}
	for _, t := range m.trees {
		walk(t.root)
	}
	var total float64
	for _, v := range raw {
		total += v
	}
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	for j, v := range raw {
		if v > 0 {
			out[m.Names[j]] = v / total
		}
	}
	return out
}
