package gbt

import (
	"fmt"

	"repro/internal/ml/dataset"
	"repro/internal/pool"
)

// forest is the ensemble flattened into structure-of-arrays form for batch
// inference: every tree's pre-order node array concatenated, with child
// indices rebased to absolute positions. Splitting the node struct into
// parallel slices keeps each traversal's working set to exactly the fields
// it touches (feature/threshold/children on the way down, weight only at
// the leaf), so PredictAll streams through memory instead of striding over
// 40-byte node records.
type forest struct {
	feature []int32
	thresh  []float64
	weight  []float64
	left    []int32
	right   []int32
	roots   []int32 // start of each tree in the flat arrays
}

// buildFlat constructs the model's SoA forest from its trees. Called once
// at the end of training and loading; prediction paths treat it as
// immutable, so a built model is safe for concurrent PredictAll calls.
func (m *Model) buildFlat() {
	var total int
	for ti := range m.trees {
		total += len(m.trees[ti].nodes)
	}
	f := &forest{
		feature: make([]int32, 0, total),
		thresh:  make([]float64, 0, total),
		weight:  make([]float64, 0, total),
		left:    make([]int32, 0, total),
		right:   make([]int32, 0, total),
		roots:   make([]int32, 0, len(m.trees)),
	}
	for ti := range m.trees {
		base := int32(len(f.feature))
		f.roots = append(f.roots, base)
		for _, n := range m.trees[ti].nodes {
			f.feature = append(f.feature, n.feature)
			f.thresh = append(f.thresh, n.threshold)
			f.weight = append(f.weight, n.weight)
			if n.feature < 0 {
				f.left = append(f.left, 0)
				f.right = append(f.right, 0)
			} else {
				f.left = append(f.left, base+n.left)
				f.right = append(f.right, base+n.right)
			}
		}
	}
	m.flat = f
	m.code = buildCodeForest(m)
}

// predictRange fills out[k] with base plus the ensemble output for each
// row of xs. Trees accumulate in ensemble order — the identical
// floating-point sequence the per-tree traversal used, so the flat path
// is bit-identical to it.
func (f *forest) predictRange(xs [][]float64, out []float64, base float64) {
	feature, thresh := f.feature, f.thresh
	left, right, weight := f.left, f.right, f.weight
	// Hoist one shared length so the compiler can prove the five parallel
	// arrays are at least len(feature) long and drop the per-field bounds
	// checks inside the walk (child indices themselves stay checked — they
	// are data, not induction variables).
	n := len(feature)
	thresh, weight = thresh[:n], weight[:n]
	left, right = left[:n], right[:n]
	for r, x := range xs {
		s := base
		for _, root := range f.roots {
			i := root
			for feature[i] >= 0 {
				if x[feature[i]] <= thresh[i] {
					i = left[i]
				} else {
					i = right[i]
				}
			}
			s += weight[i]
		}
		out[r] = s
	}
}

// predictBatch is the row granularity of the parallel fan-out: batches
// are disjoint output ranges, so workers never share a cache line of out
// for long, and per-batch scheduling overhead stays negligible.
const predictBatch = 256

// PredictAll returns predictions for every row of d. Rows are independent,
// so batches run on the worker pool when the job is large enough to pay
// for the fan-out; results are written into per-batch slots and are
// identical to the serial traversal's.
func (m *Model) PredictAll(d *dataset.Dataset) ([]float64, error) {
	if len(m.trees) == 0 {
		return nil, ErrNotTrained
	}
	if d.NumFeatures() != len(m.Names) {
		return nil, fmt.Errorf("gbt: dataset has %d features, want %d", d.NumFeatures(), len(m.Names))
	}
	out := make([]float64, d.Len())
	if err := m.PredictBatch(d.X, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatch fills out[i] with the prediction for row xs[i], writing
// into caller-owned storage — the zero-extra-allocation batch entry point
// the serve daemon's batcher coalesces requests into. Every row must have
// exactly len(Names) values and out must have len(xs) slots. Large
// batches fan out on the worker pool exactly like PredictAll; results are
// identical to per-row Predict.
func (m *Model) PredictBatch(xs [][]float64, out []float64) error {
	if len(m.trees) == 0 {
		return ErrNotTrained
	}
	if len(out) != len(xs) {
		return fmt.Errorf("gbt: out has %d slots for %d rows", len(out), len(xs))
	}
	for i, x := range xs {
		if len(x) != len(m.Names) {
			return fmt.Errorf("gbt: row %d has %d features, want %d", i, len(x), len(m.Names))
		}
	}
	if m.flat == nil {
		m.buildFlat()
	}
	n := len(xs)
	workers := m.params.Workers
	if workers <= 0 {
		workers = pool.Workers()
	}
	batches := (n + predictBatch - 1) / predictBatch
	if workers > 1 && batches > 1 {
		pool.Do(batches, workers, func(bi int) {
			lo := bi * predictBatch
			hi := lo + predictBatch
			if hi > n {
				hi = n
			}
			m.flat.predictRange(xs[lo:hi], out[lo:hi], m.Base)
		})
	} else {
		m.flat.predictRange(xs, out, m.Base)
	}
	return nil
}
