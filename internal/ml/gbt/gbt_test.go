package gbt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/dataset"
	"repro/internal/stats"
)

func makeDataset(t *testing.T, n int, seed int64, f func(x []float64) float64, noise float64, p int) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Float64()*10 - 5
		}
		x[i] = row
		y[i] = f(row) + noise*rng.NormFloat64()
	}
	d, err := dataset.New(names, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTrainFitsStepFunction(t *testing.T) {
	d := makeDataset(t, 400, 1, func(x []float64) float64 {
		if x[0] > 0 {
			return 10
		}
		return -10
	}, 0, 2)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ x, want float64 }{{3, 10}, {-3, -10}} {
		got, err := m.Predict([]float64{probe.x, 0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-probe.want) > 0.5 {
			t.Errorf("Predict(x=%g) = %g, want %g", probe.x, got, probe.want)
		}
	}
}

func TestTrainFitsInteraction(t *testing.T) {
	// XOR-style interaction no linear model can express.
	d := makeDataset(t, 2000, 2, func(x []float64) float64 {
		if (x[0] > 0) != (x[1] > 0) {
			return 5
		}
		return -5
	}, 0.1, 2)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{2, 2}, -5},
		{[]float64{-2, -2}, -5},
		{[]float64{2, -2}, 5},
		{[]float64{-2, 2}, 5},
	}
	for _, c := range cases {
		got, _ := m.Predict(c.x)
		if math.Abs(got-c.want) > 1.5 {
			t.Errorf("Predict(%v) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestTrainBeatsMeanOnSmooth(t *testing.T) {
	d := makeDataset(t, 800, 3, func(x []float64) float64 {
		return 3*x[0] + math.Sin(x[1]) + x[2]*x[2]/5
	}, 0.2, 3)
	train, test := d.Split(0.75, 7)
	m, err := Train(train, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	preds, _ := m.PredictAll(test)
	rmse, _ := stats.RMSE(test.Y, preds)
	sd := stats.StdDev(test.Y)
	if rmse > sd/3 {
		t.Errorf("test RMSE %.3f vs target sd %.3f: model barely better than mean", rmse, sd)
	}
}

func TestImportanceIdentifiesSignal(t *testing.T) {
	// Only feature 0 matters; importance must concentrate there.
	d := makeDataset(t, 500, 4, func(x []float64) float64 { return 4 * x[0] }, 0.1, 4)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Importance()
	if imp["a"] < 0.8 {
		t.Errorf("importance of the only informative feature = %.3f, want >= 0.8 (all: %v)", imp["a"], imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("importance sums to %g, want 1", total)
	}
}

func TestTrainDeterministic(t *testing.T) {
	d := makeDataset(t, 300, 5, func(x []float64) float64 { return x[0] - x[1] }, 0.3, 2)
	p := DefaultParams()
	p.Seed = 99
	m1, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.7, -2.3}
	v1, _ := m1.Predict(probe)
	v2, _ := m2.Predict(probe)
	if v1 != v2 {
		t.Errorf("same seed, different predictions: %g vs %g", v1, v2)
	}
}

func TestTrainConstantTarget(t *testing.T) {
	d := makeDataset(t, 50, 6, func([]float64) float64 { return 42 }, 0, 2)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Predict([]float64{0, 0})
	if math.Abs(got-42) > 1e-9 {
		t.Errorf("constant target predicted as %g", got)
	}
	if len(m.Importance()) != 0 {
		t.Error("constant target should yield no importances")
	}
}

func TestTrainSingleSample(t *testing.T) {
	d, _ := dataset.New([]string{"a"}, [][]float64{{1}}, []float64{5})
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Predict([]float64{1})
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("single sample predicted as %g", got)
	}
}

func TestTrainErrors(t *testing.T) {
	empty := &dataset.Dataset{Names: []string{"a"}}
	if _, err := Train(empty, DefaultParams()); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("got %v, want ErrEmpty", err)
	}
	noFeat := &dataset.Dataset{X: [][]float64{{}}, Y: []float64{1}}
	if _, err := Train(noFeat, DefaultParams()); err == nil {
		t.Error("no features should error")
	}
}

func TestPredictErrors(t *testing.T) {
	var m Model
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Error("untrained model must refuse to predict")
	}
	d := makeDataset(t, 50, 7, func(x []float64) float64 { return x[0] }, 0, 2)
	tm, _ := Train(d, DefaultParams())
	if _, err := tm.Predict([]float64{1}); err == nil {
		t.Error("wrong-width vector should error")
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	p.fillDefaults()
	def := DefaultParams()
	if p.Rounds != def.Rounds || p.MaxDepth != def.MaxDepth || p.LearningRate != def.LearningRate {
		t.Errorf("fillDefaults gave %+v", p)
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	d := makeDataset(t, 600, 8, func(x []float64) float64 { return 2 * x[0] }, 0.2, 3)
	p := DefaultParams()
	p.SubsampleRows = 0.5
	p.SubsampleCols = 0.7
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Predict([]float64{2, 0, 0})
	if math.Abs(got-4) > 1.0 {
		t.Errorf("subsampled model Predict = %g, want ~4", got)
	}
}

func TestMoreRoundsReduceTrainingError(t *testing.T) {
	d := makeDataset(t, 400, 9, func(x []float64) float64 {
		return x[0]*x[1]/3 + x[2]
	}, 0.1, 3)
	errAt := func(rounds int) float64 {
		p := DefaultParams()
		p.Rounds = rounds
		m, err := Train(d, p)
		if err != nil {
			t.Fatal(err)
		}
		preds, _ := m.PredictAll(d)
		rmse, _ := stats.RMSE(d.Y, preds)
		return rmse
	}
	few := errAt(10)
	many := errAt(200)
	if many >= few {
		t.Errorf("200 rounds RMSE %.4f not below 10 rounds RMSE %.4f", many, few)
	}
}

func TestGammaPrunesSplits(t *testing.T) {
	d := makeDataset(t, 300, 10, func(x []float64) float64 { return x[0] }, 1.0, 2)
	strict := DefaultParams()
	strict.Gamma = 1e12 // no split can pay for itself
	m, err := Train(d, strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Importance()) != 0 {
		t.Error("with huge gamma every tree should be a stump with no splits")
	}
}

func TestNumTrees(t *testing.T) {
	d := makeDataset(t, 60, 11, func(x []float64) float64 { return x[0] }, 0, 1)
	p := DefaultParams()
	p.Rounds = 37
	m, _ := Train(d, p)
	if m.NumTrees() != 37 {
		t.Errorf("NumTrees = %d, want 37", m.NumTrees())
	}
}
