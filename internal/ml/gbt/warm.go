package gbt

import (
	"fmt"

	"repro/internal/ml/dataset"
)

// prevTreeCount returns the ensemble size of a warm-start source (0 for a
// cold start).
func prevTreeCount(prev *Model) int {
	if prev == nil {
		return 0
	}
	return len(prev.trees)
}

// TrainWarm continues boosting from a previously fitted model: the
// returned ensemble is prev's trees followed by p.Rounds new trees fitted
// to the residuals of prev's predictions on d, with prev.Base carried
// over. This is how an online refresh adapts an already-blessed model to
// a new window of data at a fraction of a cold retrain's cost — the
// inherited trees keep what was learned, the new rounds correct it.
//
// The warm path requires histogram training (p.Bins > 0): d is quantized
// fresh, so the new trees' thresholds live in the new window's bin space
// while the inherited trees keep their original raw-space thresholds —
// Predict composes the two transparently. Feature names must match prev's
// exactly. A nil or empty prev falls back to a cold Train.
func TrainWarm(d *dataset.Dataset, p Params, prev *Model) (*Model, error) {
	if prev == nil || len(prev.trees) == 0 {
		return Train(d, p)
	}
	if len(d.Names) != len(prev.Names) {
		return nil, fmt.Errorf("gbt: warm start feature count %d != previous model's %d", len(d.Names), len(prev.Names))
	}
	for i, name := range d.Names {
		if name != prev.Names[i] {
			return nil, fmt.Errorf("gbt: warm start feature %d is %q, previous model has %q", i, name, prev.Names[i])
		}
	}
	p.fillDefaults()
	if p.Bins <= 0 {
		return nil, fmt.Errorf("gbt: warm start requires binned training (Bins > 0)")
	}
	if d.Len() == 0 {
		return nil, dataset.ErrEmpty
	}
	bd, err := dataset.Bin(d, p.Bins)
	if err != nil {
		return nil, err
	}
	// Seed per-row predictions with the previous ensemble, evaluated in
	// raw space (the inherited trees' thresholds are raw-space values from
	// their own training run; the new window's bins know nothing of them).
	init := make([]float64, d.Len())
	for i, row := range d.X {
		v, err := prev.Predict(row)
		if err != nil {
			return nil, err
		}
		init[i] = v
	}
	return trainHistFrom(bd, bd.Codes, bd.Y, p, prev, init)
}
