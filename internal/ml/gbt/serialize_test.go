package gbt

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func trainedModel(t *testing.T) (*Model, [][]float64) {
	t.Helper()
	d := makeDataset(t, 300, 21, func(x []float64) float64 {
		if x[0] > 0 {
			return 3*x[1] + 5
		}
		return -x[1]
	}, 0.1, 3)
	m, err := Train(d, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	probes := make([][]float64, 50)
	for i := range probes {
		probes[i] = []float64{rng.Float64()*10 - 5, rng.Float64()*10 - 5, rng.Float64()*10 - 5}
	}
	return m, probes
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, probes := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != m.NumTrees() {
		t.Fatalf("tree count %d vs %d", back.NumTrees(), m.NumTrees())
	}
	for _, p := range probes {
		want, _ := m.Predict(p)
		got, err := back.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prediction differs after round trip: %g vs %g", got, want)
		}
	}
	// Importances survive (gain is serialized).
	wi := m.Importance()
	gi := back.Importance()
	for k, v := range wi {
		if gi[k] != v {
			t.Errorf("importance %s differs: %g vs %g", k, gi[k], v)
		}
	}
}

// TestSaveLoadBinnedRoundTrip checks histogram-trained models persist
// their provenance: Bins and the per-feature cut points survive the trip,
// and the reloaded forest predicts identically.
func TestSaveLoadBinnedRoundTrip(t *testing.T) {
	d := makeDataset(t, 300, 22, func(x []float64) float64 {
		return x[0]*x[1] + x[2]
	}, 0.1, 3)
	p := DefaultParams()
	p.Bins = 64
	m, err := Train(d, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bins() != m.Bins() {
		t.Errorf("Bins %d after round trip, want %d", back.Bins(), m.Bins())
	}
	if len(back.cuts) != len(m.cuts) {
		t.Fatalf("cut columns %d after round trip, want %d", len(back.cuts), len(m.cuts))
	}
	for f := range m.cuts {
		if len(back.cuts[f]) != len(m.cuts[f]) {
			t.Fatalf("feature %d: %d cuts after round trip, want %d", f, len(back.cuts[f]), len(m.cuts[f]))
		}
		for i := range m.cuts[f] {
			if back.cuts[f][i] != m.cuts[f][i] {
				t.Fatalf("feature %d cut %d differs: %v vs %v", f, i, back.cuts[f][i], m.cuts[f][i])
			}
		}
	}
	for _, row := range d.X {
		want, _ := m.Predict(row)
		got, err := back.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prediction differs after round trip: %g vs %g", got, want)
		}
	}
}

// TestLoadRejectsBadBins checks the new provenance fields are validated.
func TestLoadRejectsBadBins(t *testing.T) {
	cases := []string{
		`{"version": 1, "base": 1, "names": ["a"], "bins": -1, "trees": [[{"f": -1, "l": -1, "r": -1}]]}`,
		`{"version": 1, "base": 1, "names": ["a"], "bins": 300, "trees": [[{"f": -1, "l": -1, "r": -1}]]}`,
		`{"version": 1, "base": 1, "names": ["a"], "cuts": [[1],[2]], "trees": [[{"f": -1, "l": -1, "r": -1}]]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); !errors.Is(err, ErrBadModel) {
			t.Errorf("case %d: got %v, want ErrBadModel", i, err)
		}
	}
}

func TestSaveUntrained(t *testing.T) {
	var m Model
	if err := m.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("got %v, want ErrNotTrained", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "base": 1, "names": ["a"], "trees": [[{"f": -1}]]}`,
		`{"version": 1, "base": 1, "names": [], "trees": []}`,
		`{"version": 1, "base": 1, "names": ["a"], "trees": []}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); !errors.Is(err, ErrBadModel) {
			t.Errorf("case %d: got %v, want ErrBadModel", i, err)
		}
	}
}

func TestLoadRejectsMalformedTrees(t *testing.T) {
	cases := []string{
		// Feature index out of range.
		`{"version": 1, "base": 0, "names": ["a"], "trees": [[{"f": 5, "l": 1, "r": 2}, {"f": -1}, {"f": -1}]]}`,
		// Child index out of range.
		`{"version": 1, "base": 0, "names": ["a"], "trees": [[{"f": 0, "l": 10, "r": 2}, {"f": -1}, {"f": -1}]]}`,
		// Self-referencing node (cycle).
		`{"version": 1, "base": 0, "names": ["a"], "trees": [[{"f": 0, "l": 0, "r": 0}]]}`,
		// Backward reference (cycle across nodes).
		`{"version": 1, "base": 0, "names": ["a"], "trees": [[{"f": 0, "l": 1, "r": 2}, {"f": 0, "l": 0, "r": 2}, {"f": -1}]]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); !errors.Is(err, ErrBadModel) {
			t.Errorf("case %d: got %v, want ErrBadModel", i, err)
		}
	}
}

func TestLoadMinimalValidModel(t *testing.T) {
	payload := `{"version": 1, "base": 2.5, "names": ["a"], "trees": [[{"f": -1, "w": 0.5, "l": -1, "r": -1}]]}`
	m, err := Load(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Errorf("Predict = %g, want base+leaf = 3.0", got)
	}
}
