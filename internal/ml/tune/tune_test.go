package tune

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/dataset"
	"repro/internal/ml/gbt"
	"repro/internal/stats"
)

func makeData(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.Float64()*10 + 1
		b := rng.Float64() * 5
		x[i] = []float64{a, b}
		y[i] = a*3 + b*b + rng.NormFloat64()*0.5
	}
	d, err := dataset.New([]string{"a", "b"}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGridExpand(t *testing.T) {
	g := Grid{Rounds: []int{50, 100}, MaxDepth: []int{3}, LearningRate: []float64{0.1, 0.2}}
	got := g.expand()
	if len(got) != 4 {
		t.Fatalf("expanded to %d candidates, want 4", len(got))
	}
	// Unlisted dimensions fall back to defaults.
	def := gbt.DefaultParams()
	for _, p := range got {
		if p.Lambda != def.Lambda || p.SubsampleRows != def.SubsampleRows {
			t.Errorf("defaults not applied: %+v", p)
		}
	}
}

func TestGridExpandEmptyUsesDefaults(t *testing.T) {
	got := Grid{}.expand()
	if len(got) != 1 {
		t.Fatalf("empty grid should expand to exactly the default, got %d", len(got))
	}
}

func TestKFoldPartition(t *testing.T) {
	d := makeData(t, 50, 1)
	folds := kfold(d, 5, 7)
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	totalValid := 0
	for _, f := range folds {
		if f.train.Len()+f.valid.Len() != d.Len() {
			t.Fatalf("fold does not partition: %d + %d != %d", f.train.Len(), f.valid.Len(), d.Len())
		}
		totalValid += f.valid.Len()
	}
	if totalValid != d.Len() {
		t.Fatalf("validation folds cover %d of %d", totalValid, d.Len())
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	p := permutation(100, 3)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p[:10])
		}
		seen[v] = true
	}
	// Deterministic.
	q := permutation(100, 3)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("permutation not deterministic")
		}
	}
	// Different seeds differ.
	r := permutation(100, 4)
	same := true
	for i := range p {
		if p[i] != r[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical permutations")
	}
}

func TestSearchFindsReasonableModel(t *testing.T) {
	d := makeData(t, 300, 2)
	g := Grid{Rounds: []int{50, 150}, MaxDepth: []int{2, 4}, LearningRate: []float64{0.1}}
	res, err := Search(d, g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 4 {
		t.Fatalf("scored %d candidates, want 4", len(res.Scores))
	}
	if math.IsInf(res.BestScore, 1) || res.BestScore <= 0 {
		t.Fatalf("best score %g", res.BestScore)
	}
	// The winner's score is the minimum.
	for _, s := range res.Scores {
		if s.MdAPE < res.BestScore {
			t.Errorf("candidate %.3f beats reported best %.3f", s.MdAPE, res.BestScore)
		}
	}
	// Depth-4/150-round should beat depth-2/50-round on a curved target.
	if res.Best.MaxDepth == 2 && res.Best.Rounds == 50 {
		t.Error("search picked the weakest configuration on a nonlinear target")
	}
}

func TestSearchDeterministic(t *testing.T) {
	d := makeData(t, 150, 3)
	g := Grid{Rounds: []int{40}, MaxDepth: []int{3, 5}}
	r1, err := Search(d, g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(d, g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestScore != r2.BestScore || r1.Best.MaxDepth != r2.Best.MaxDepth {
		t.Error("search not deterministic")
	}
}

func TestSearchTooFewSamples(t *testing.T) {
	d := makeData(t, 4, 4)
	if _, err := Search(d, DefaultGrid(), 5, 1); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("got %v, want ErrTooFewSamples", err)
	}
}

func TestTrainBestUsableModel(t *testing.T) {
	d := makeData(t, 300, 5)
	m, res, err := TrainBest(d, Grid{Rounds: []int{80}, MaxDepth: []int{3, 4}}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictAll(d)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := stats.MdAPE(d.Y, pred)
	if md > res.BestScore*2 {
		t.Errorf("full-fit training MdAPE %.2f far above CV score %.2f", md, res.BestScore)
	}
}

// TestSharedBinningCacheBitIdentical pins the shared-cache contract: a
// search whose candidates reuse one dataset.Binned (built once from the
// full dataset, row-subset per fold) must score every candidate exactly
// as if each fold of each grid point had re-binned from scratch.
func TestSharedBinningCacheBitIdentical(t *testing.T) {
	d := makeData(t, 240, 8)
	g := Grid{Rounds: []int{40, 80}, MaxDepth: []int{3, 4}, Bins: []int{64}}
	const folds, seed = 3, 21

	res, err := Search(d, g, folds, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same folds and candidates, but a fresh Bin call per
	// (candidate, fold) pair — the quadratic-cost layout the cache avoids.
	splits := kfold(d, folds, seed)
	for ci, cand := range g.expand() {
		cand.Seed = seed
		var sum float64
		for _, f := range splits {
			bd, err := dataset.Bin(d, cand.Bins)
			if err != nil {
				t.Fatal(err)
			}
			m, err := gbt.TrainBinned(bd, f.trainIdx, cand)
			if err != nil {
				t.Fatal(err)
			}
			pred, err := m.PredictAll(f.valid)
			if err != nil {
				t.Fatal(err)
			}
			md, err := stats.MdAPE(f.valid.Y, pred)
			if err != nil {
				t.Fatal(err)
			}
			sum += md
		}
		want := sum / folds
		if got := res.Scores[ci].MdAPE; got != want {
			t.Errorf("candidate %d: cached score %v != per-point binning %v", ci, got, want)
		}
	}
}

// TestTrainBestBinnedGrid checks a Bins-constrained grid flows through to
// the final full-dataset fit: the returned model is histogram-trained.
func TestTrainBestBinnedGrid(t *testing.T) {
	d := makeData(t, 200, 9)
	g := Grid{Rounds: []int{60}, MaxDepth: []int{3, 4}, Bins: []int{128}}
	m, res, err := TrainBest(d, g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Bins != 128 {
		t.Errorf("winning candidate Bins = %d, want 128", res.Best.Bins)
	}
	if m.Bins() == 0 {
		t.Error("TrainBest final fit did not use histogram training")
	}
	pred, err := m.PredictAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if md, _ := stats.MdAPE(d.Y, pred); md > res.BestScore*2 {
		t.Errorf("binned full fit MdAPE %.2f far above CV score %.2f", md, res.BestScore)
	}
}

func TestTunedAtLeastCloseToDefault(t *testing.T) {
	// On held-out data, the tuned model should be at least comparable to
	// the default configuration (allow a small margin for CV noise).
	d := makeData(t, 600, 6)
	train, test := d.Split(0.7, 13)

	defModel, err := gbt.Train(train, gbt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	defPred, _ := defModel.PredictAll(test)
	defMd, _ := stats.MdAPE(test.Y, defPred)

	tuned, _, err := TrainBest(train, DefaultGrid(), 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	tunedPred, _ := tuned.PredictAll(test)
	tunedMd, _ := stats.MdAPE(test.Y, tunedPred)

	if tunedMd > defMd*1.3 {
		t.Errorf("tuned MdAPE %.3f much worse than default %.3f", tunedMd, defMd)
	}
}
