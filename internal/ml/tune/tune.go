// Package tune provides k-fold cross-validated hyperparameter search for
// the gradient-boosted tree model — the paper's §8 future-work direction
// ("whether more advanced machine learning methods … can yield better
// models") made concrete: instead of a fixed configuration, search a small
// grid and keep the setting with the lowest cross-validated MdAPE.
package tune

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ml/dataset"
	"repro/internal/ml/gbt"
	"repro/internal/stats"
)

// ErrTooFewSamples is returned when the dataset cannot support the
// requested number of folds.
var ErrTooFewSamples = errors.New("tune: too few samples for k-fold CV")

// Grid is the hyperparameter search space: the cross product of the
// listed values. Empty slices fall back to the default parameter value.
//
// Bins selects the gbt split-search algorithm per candidate (0 = exact
// presorted, 2..256 = histogram-binned). It is usually a single value, not
// a searched dimension: all candidates with the same Bins share one
// dataset.Binned quantization of the full dataset, built once and
// row-subset per CV fold, so the binning cost is paid once for the entire
// folds × grid-points search.
type Grid struct {
	Rounds         []int
	MaxDepth       []int
	LearningRate   []float64
	Lambda         []float64
	SubsampleRows  []float64
	MinChildWeight []float64
	Bins           []int
}

// DefaultGrid is a compact space that covers the regimes that matter for
// transfer-rate data: shallow-vs-deep trees, slow-vs-fast learning.
func DefaultGrid() Grid {
	return Grid{
		Rounds:       []int{100, 200},
		MaxDepth:     []int{3, 4, 6},
		LearningRate: []float64{0.05, 0.1, 0.2},
		Lambda:       []float64{1},
	}
}

// expand enumerates the grid as concrete parameter sets.
func (g Grid) expand() []gbt.Params {
	base := gbt.DefaultParams()
	orDefaultI := func(xs []int, d int) []int {
		if len(xs) == 0 {
			return []int{d}
		}
		return xs
	}
	orDefaultF := func(xs []float64, d float64) []float64 {
		if len(xs) == 0 {
			return []float64{d}
		}
		return xs
	}
	var out []gbt.Params
	for _, rounds := range orDefaultI(g.Rounds, base.Rounds) {
		for _, depth := range orDefaultI(g.MaxDepth, base.MaxDepth) {
			for _, lr := range orDefaultF(g.LearningRate, base.LearningRate) {
				for _, lam := range orDefaultF(g.Lambda, base.Lambda) {
					for _, sub := range orDefaultF(g.SubsampleRows, base.SubsampleRows) {
						for _, mcw := range orDefaultF(g.MinChildWeight, base.MinChildWeight) {
							for _, bins := range orDefaultI(g.Bins, base.Bins) {
								p := base
								p.Rounds = rounds
								p.MaxDepth = depth
								p.LearningRate = lr
								p.Lambda = lam
								p.SubsampleRows = sub
								p.MinChildWeight = mcw
								p.Bins = bins
								out = append(out, p)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Result is the outcome of a search: the winning parameters and the CV
// score of every candidate.
type Result struct {
	Best      gbt.Params
	BestScore float64 // cross-validated MdAPE of the winner
	Scores    []CandidateScore
}

// CandidateScore pairs a parameter set with its cross-validated MdAPE.
type CandidateScore struct {
	Params gbt.Params
	MdAPE  float64
}

// Search evaluates every grid point with k-fold cross validation on d and
// returns the configuration minimizing mean MdAPE across folds. The search
// is deterministic in seed.
func Search(d *dataset.Dataset, g Grid, folds int, seed int64) (Result, error) {
	var res Result
	if folds < 2 {
		folds = 3
	}
	if d.Len() < folds*2 {
		return res, fmt.Errorf("%w: %d samples, %d folds", ErrTooFewSamples, d.Len(), folds)
	}
	splits := kfold(d, folds, seed)
	candidates := g.expand()
	if len(candidates) == 0 {
		return res, errors.New("tune: empty grid")
	}

	// Shared binning cache: one dataset.Binned per distinct quantization
	// level, built lazily from the full dataset and reused — by row-index
	// subsetting, never re-binning — across every fold of every candidate.
	cache := binCache{d: d}
	res.BestScore = math.Inf(1)
	for _, params := range candidates {
		params.Seed = seed
		bd, err := cache.get(params.Bins)
		if err != nil {
			return res, err
		}
		score, err := crossValidate(splits, params, bd)
		if err != nil {
			return res, err
		}
		res.Scores = append(res.Scores, CandidateScore{Params: params, MdAPE: score})
		if score < res.BestScore {
			res.BestScore = score
			res.Best = params
		}
	}
	return res, nil
}

// binCache memoizes dataset.Bin per quantization level for one search.
type binCache struct {
	d      *dataset.Dataset
	binned map[int]*dataset.Binned
}

// get returns the shared binned matrix for the given level (nil for the
// exact path), building it on first use.
func (c *binCache) get(bins int) (*dataset.Binned, error) {
	if bins <= 0 {
		return nil, nil
	}
	if bd, ok := c.binned[bins]; ok {
		return bd, nil
	}
	bd, err := dataset.Bin(c.d, bins)
	if err != nil {
		return nil, err
	}
	if c.binned == nil {
		c.binned = map[int]*dataset.Binned{}
	}
	c.binned[bins] = bd
	return bd, nil
}

// fold is one train/validation split. The materialized datasets drive the
// exact path and validation scoring; trainIdx carries the same training
// rows as indices into the full dataset, which is all the binned path
// needs to train against a shared dataset.Binned without copying rows.
type fold struct {
	train, valid *dataset.Dataset
	trainIdx     []int
}

// kfold deterministically partitions d into k folds.
func kfold(d *dataset.Dataset, k int, seed int64) []fold {
	n := d.Len()
	// Reuse the dataset's deterministic shuffling by splitting off each
	// fold with Subset over a shared permutation.
	perm := permutation(n, seed)
	var folds []fold
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		var trainIdx, validIdx []int
		for i, p := range perm {
			if i >= lo && i < hi {
				validIdx = append(validIdx, p)
			} else {
				trainIdx = append(trainIdx, p)
			}
		}
		folds = append(folds, fold{
			train:    d.Subset(trainIdx),
			valid:    d.Subset(validIdx),
			trainIdx: trainIdx,
		})
	}
	return folds
}

// permutation is a deterministic Fisher–Yates shuffle driven by a simple
// SplitMix-style generator, so the folds do not depend on math/rand
// internals.
func permutation(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// crossValidate returns the mean validation MdAPE over the folds. With a
// shared binned matrix (bd non-nil) training subsets it by the fold's row
// indices; validation always scores against the raw feature rows, which
// the binned trees evaluate exactly (thresholds are raw-space cut points).
func crossValidate(folds []fold, params gbt.Params, bd *dataset.Binned) (float64, error) {
	var sum float64
	for _, f := range folds {
		var m *gbt.Model
		var err error
		if bd != nil {
			m, err = gbt.TrainBinned(bd, f.trainIdx, params)
		} else {
			m, err = gbt.Train(f.train, params)
		}
		if err != nil {
			return 0, err
		}
		pred, err := m.PredictAll(f.valid)
		if err != nil {
			return 0, err
		}
		md, err := stats.MdAPE(f.valid.Y, pred)
		if err != nil {
			return 0, err
		}
		sum += md
	}
	return sum / float64(len(folds)), nil
}

// TrainBest runs Search and then fits the winning configuration on the
// full dataset.
func TrainBest(d *dataset.Dataset, g Grid, folds int, seed int64) (*gbt.Model, Result, error) {
	res, err := Search(d, g, folds, seed)
	if err != nil {
		return nil, res, err
	}
	m, err := gbt.Train(d, res.Best)
	return m, res, err
}
