package linreg

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := makeLinear(t, 60, []float64{2, -1, 0.5}, 4, 0.1, 31)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1.5, -0.3, 2.2}
	want, _ := m.Predict(probe)
	got, err := back.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("prediction differs after round trip: %g vs %g", got, want)
	}
	if c, ok := back.CoefficientByName("b"); !ok || c != m.Coefficients[1] {
		t.Error("names lost in round trip")
	}
}

func TestSaveUntrained(t *testing.T) {
	var m Model
	if err := m.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("got %v, want ErrNotTrained", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nope",
		`{"version": 9, "intercept": 1, "coefficients": [1], "names": ["a"]}`,
		`{"version": 1, "intercept": 1, "coefficients": [], "names": []}`,
		`{"version": 1, "intercept": 1, "coefficients": [1, 2], "names": ["a"]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); !errors.Is(err, ErrBadModel) {
			t.Errorf("case %d: got %v, want ErrBadModel", i, err)
		}
	}
}
