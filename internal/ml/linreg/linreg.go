// Package linreg implements ordinary least squares linear regression
// (Equation 3 of the paper: R = β0 + β1·x1 + … + βm·xm) fitted by QR
// decomposition, exactly the estimator the paper uses for its per-edge and
// global linear models (§5.1, §5.4). Coefficients on standardized inputs
// are directly comparable across features, which is how Figure 9 reads
// feature significance off the model.
package linreg

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/ml/dataset"
)

// ErrNotTrained is returned when Predict is called before Fit succeeds.
var ErrNotTrained = errors.New("linreg: model not trained")

// Model is a fitted linear regression.
type Model struct {
	Intercept    float64   // β0
	Coefficients []float64 // β1..βm, aligned with Names
	Names        []string  // feature names at fit time
	trained      bool
}

// Fit estimates the coefficients minimizing the residual sum of squares
// (Equation 4). The caller is expected to pass standardized features when
// coefficient magnitudes are to be compared. Fit falls back to a
// ridge-regularized normal-equation solve when the design matrix is rank
// deficient (e.g. duplicated columns), so it always returns a usable model
// for non-empty input.
func Fit(d *dataset.Dataset) (*Model, error) {
	n, p := d.Len(), d.NumFeatures()
	if n == 0 {
		return nil, dataset.ErrEmpty
	}
	if p == 0 {
		return nil, fmt.Errorf("linreg: no features")
	}

	// Design matrix with a leading column of ones for the intercept.
	a := linalg.NewMatrix(n, p+1)
	for i, row := range d.X {
		a.Set(i, 0, 1)
		for j, v := range row {
			a.Set(i, j+1, v)
		}
	}

	beta, err := linalg.SolveLeastSquares(a, d.Y)
	if errors.Is(err, linalg.ErrSingular) || errors.Is(err, linalg.ErrDimension) {
		beta, err = ridgeSolve(a, d.Y, 1e-8)
	}
	if err != nil {
		return nil, err
	}
	return &Model{
		Intercept:    beta[0],
		Coefficients: beta[1:],
		Names:        append([]string(nil), d.Names...),
		trained:      true,
	}, nil
}

// ridgeSolve solves (AᵀA + λI)·β = Aᵀy, which is always well posed for
// λ > 0. The intercept column is regularized too; λ is tiny so the effect
// on well-determined coefficients is negligible.
func ridgeSolve(a *linalg.Matrix, y []float64, lambda float64) ([]float64, error) {
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for j := 0; j < ata.Rows; j++ {
		ata.Set(j, j, ata.At(j, j)+lambda)
	}
	aty, err := at.MulVec(y)
	if err != nil {
		return nil, err
	}
	ch, err := linalg.DecomposeCholesky(ata)
	if err != nil {
		return nil, err
	}
	return ch.Solve(aty)
}

// Predict returns the model value for one feature vector.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if len(x) != len(m.Coefficients) {
		return 0, fmt.Errorf("linreg: feature vector has %d entries, want %d", len(x), len(m.Coefficients))
	}
	out := m.Intercept
	for j, c := range m.Coefficients {
		out += c * x[j]
	}
	return out, nil
}

// PredictAll returns predictions for every row of d.
func (m *Model) PredictAll(d *dataset.Dataset) ([]float64, error) {
	out := make([]float64, d.Len())
	for i, row := range d.X {
		v, err := m.Predict(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// CoefficientByName returns the coefficient of the named feature.
func (m *Model) CoefficientByName(name string) (float64, bool) {
	for j, n := range m.Names {
		if n == name {
			return m.Coefficients[j], true
		}
	}
	return 0, false
}
