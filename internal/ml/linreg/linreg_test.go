package linreg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/dataset"
)

func makeLinear(t *testing.T, n int, coefs []float64, intercept, noise float64, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := len(coefs)
	names := make([]string, p)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		v := intercept
		for j := range row {
			row[j] = rng.NormFloat64() * 3
			v += coefs[j] * row[j]
		}
		x[i] = row
		y[i] = v + noise*rng.NormFloat64()
	}
	d, err := dataset.New(names, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitRecoversExactCoefficients(t *testing.T) {
	want := []float64{2, -3, 0.5}
	d := makeLinear(t, 50, want, 7, 0, 1)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-7) > 1e-8 {
		t.Errorf("intercept = %g, want 7", m.Intercept)
	}
	for j, w := range want {
		if math.Abs(m.Coefficients[j]-w) > 1e-8 {
			t.Errorf("coef[%d] = %g, want %g", j, m.Coefficients[j], w)
		}
	}
}

func TestFitNoisyCoefficientsClose(t *testing.T) {
	want := []float64{1.5, -0.8}
	d := makeLinear(t, 2000, want, -2, 0.5, 2)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range want {
		if math.Abs(m.Coefficients[j]-w) > 0.05 {
			t.Errorf("coef[%d] = %g, want ~%g", j, m.Coefficients[j], w)
		}
	}
}

func TestFitCollinearFallsBackToRidge(t *testing.T) {
	// Duplicate columns are rank deficient for QR; the ridge fallback
	// must still produce a usable model.
	n := 30
	x := make([][]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range x {
		v := rng.NormFloat64()
		x[i] = []float64{v, v}
		y[i] = 4 * v
	}
	d, _ := dataset.New([]string{"a", "dup"}, x, y)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// The two coefficients share the weight; predictions must be right.
	pred, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-4) > 1e-3 {
		t.Errorf("collinear prediction = %g, want 4", pred)
	}
}

func TestPredictAll(t *testing.T) {
	d := makeLinear(t, 40, []float64{1}, 0, 0, 4)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.PredictAll(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if math.Abs(preds[i]-d.Y[i]) > 1e-8 {
			t.Fatalf("prediction %d: %g vs %g", i, preds[i], d.Y[i])
		}
	}
}

func TestPredictErrors(t *testing.T) {
	var m Model
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Error("untrained model should refuse to predict")
	}
	d := makeLinear(t, 10, []float64{1, 2}, 0, 0, 5)
	tm, _ := Fit(d)
	if _, err := tm.Predict([]float64{1}); err == nil {
		t.Error("wrong-width vector should error")
	}
}

func TestFitEmpty(t *testing.T) {
	d := &dataset.Dataset{Names: []string{"a"}}
	if _, err := Fit(d); !errors.Is(err, dataset.ErrEmpty) {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestFitNoFeatures(t *testing.T) {
	d := &dataset.Dataset{Names: nil, X: [][]float64{{}}, Y: []float64{1}}
	if _, err := Fit(d); err == nil {
		t.Error("no features should error")
	}
}

func TestCoefficientByName(t *testing.T) {
	d := makeLinear(t, 30, []float64{5, -1}, 0, 0, 6)
	m, _ := Fit(d)
	c, ok := m.CoefficientByName("a")
	if !ok || math.Abs(c-5) > 1e-8 {
		t.Errorf("CoefficientByName(a) = %g, %v", c, ok)
	}
	if _, ok := m.CoefficientByName("zzz"); ok {
		t.Error("unknown name should not be found")
	}
}

// The residual mean must vanish when an intercept is fitted.
func TestResidualsZeroMean(t *testing.T) {
	d := makeLinear(t, 500, []float64{0.3, 1.2, -2}, 3, 2.0, 7)
	m, err := Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	preds, _ := m.PredictAll(d)
	var sum float64
	for i := range preds {
		sum += d.Y[i] - preds[i]
	}
	if math.Abs(sum/float64(len(preds))) > 1e-8 {
		t.Errorf("mean residual = %g, want 0", sum/float64(len(preds)))
	}
}
