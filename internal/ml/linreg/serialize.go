package linreg

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// jsonModel is the serialized form of a fitted linear model.
type jsonModel struct {
	Version      int       `json:"version"`
	Intercept    float64   `json:"intercept"`
	Coefficients []float64 `json:"coefficients"`
	Names        []string  `json:"names"`
}

const serializationVersion = 1

// ErrBadModel is returned when deserialization encounters a malformed or
// unsupported payload.
var ErrBadModel = errors.New("linreg: malformed model payload")

// Save writes the model as JSON, the counterpart of gbt.Model.Save for the
// linear family.
func (m *Model) Save(w io.Writer) error {
	if !m.trained {
		return ErrNotTrained
	}
	return json.NewEncoder(w).Encode(jsonModel{
		Version:      serializationVersion,
		Intercept:    m.Intercept,
		Coefficients: m.Coefficients,
		Names:        m.Names,
	})
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	if jm.Version != serializationVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModel, jm.Version)
	}
	if len(jm.Coefficients) == 0 || len(jm.Coefficients) != len(jm.Names) {
		return nil, fmt.Errorf("%w: %d coefficients for %d names", ErrBadModel, len(jm.Coefficients), len(jm.Names))
	}
	return &Model{
		Intercept:    jm.Intercept,
		Coefficients: jm.Coefficients,
		Names:        jm.Names,
		trained:      true,
	}, nil
}
