package chaos

import (
	"math/rand"
	"sort"
	"time"
)

// Serve-side chaos: a seeded, deterministic disruption schedule for
// soaking the prediction daemon. Where the simulator-side regimes above
// disrupt the modeled fabric, a SoakPlan disrupts the *serving* machinery
// — hot reloads (including deliberately corrupt registries) and load
// spikes — so the soak test can assert the daemon's robustness contract:
// zero 5xx, shedding only via 429 + Retry-After, and the last good
// registry serving through every corrupt reload.

// SoakOpKind identifies one kind of serve-side disruption.
type SoakOpKind string

const (
	// SoakReloadGood swaps in a freshly written valid registry.
	SoakReloadGood SoakOpKind = "reload_good"
	// SoakReloadCorrupt swaps in a deliberately corrupt registry file;
	// the daemon must reject it and keep serving the last good one.
	SoakReloadCorrupt SoakOpKind = "reload_corrupt"
	// SoakSpike adds a burst of extra concurrent clients.
	SoakSpike SoakOpKind = "spike"
)

// SoakOp is one scheduled disruption, At after soak start.
type SoakOp struct {
	Kind  SoakOpKind
	At    time.Duration
	Extra int           // spike: extra concurrent clients
	For   time.Duration // spike: burst duration
}

// SoakPlan is a complete serve-soak schedule: sustained base load plus
// ordered disruptions. Fully determined by its SoakConfig.
type SoakPlan struct {
	Duration    time.Duration
	BaseClients int
	Ops         []SoakOp
}

// Reloads counts the plan's reload ops, corrupt ones separately.
func (p *SoakPlan) Reloads() (good, corrupt int) {
	for _, op := range p.Ops {
		switch op.Kind {
		case SoakReloadGood:
			good++
		case SoakReloadCorrupt:
			corrupt++
		}
	}
	return good, corrupt
}

// SoakConfig parameterizes a serve soak. The zero value of each field
// selects a default sized for a CI-friendly soak (a few seconds of wall
// clock, enough disruption to exercise every failure path).
type SoakConfig struct {
	Seed        int64
	Duration    time.Duration // default 3s
	BaseClients int           // sustained concurrent clients (default 6)
	Reloads     int           // total reload ops (default 6)
	CorruptNth  int           // every n-th reload is corrupt (default 3)
	Spikes      int           // load-spike bursts (default 2)
	SpikeExtra  int           // extra clients per spike (default 12)
}

func (c *SoakConfig) fillDefaults() {
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.BaseClients <= 0 {
		c.BaseClients = 6
	}
	if c.Reloads <= 0 {
		c.Reloads = 6
	}
	if c.CorruptNth <= 0 {
		c.CorruptNth = 3
	}
	if c.Spikes < 0 {
		c.Spikes = 0
	}
	if c.Spikes == 0 {
		c.Spikes = 2
	}
	if c.SpikeExtra <= 0 {
		c.SpikeExtra = 12
	}
}

// SoakSchedule expands a config into a concrete, time-ordered plan.
// Reloads are spread evenly across the middle 80% of the soak with seeded
// jitter, so they land while load is in flight rather than at the quiet
// edges; every CorruptNth-th reload is corrupt (at least one when
// Reloads >= CorruptNth). Deterministic in Seed.
func SoakSchedule(c SoakConfig) *SoakPlan {
	c.fillDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	p := &SoakPlan{Duration: c.Duration, BaseClients: c.BaseClients}

	span := c.Duration * 8 / 10
	lead := c.Duration / 10
	slot := span / time.Duration(c.Reloads)
	for i := 0; i < c.Reloads; i++ {
		kind := SoakReloadGood
		if (i+1)%c.CorruptNth == 0 {
			kind = SoakReloadCorrupt
		}
		jitter := time.Duration(rng.Float64() * float64(slot) * 0.8)
		p.Ops = append(p.Ops, SoakOp{Kind: kind, At: lead + time.Duration(i)*slot + jitter})
	}
	for i := 0; i < c.Spikes; i++ {
		at := lead + time.Duration(rng.Float64()*float64(span))
		p.Ops = append(p.Ops, SoakOp{
			Kind:  SoakSpike,
			At:    at,
			Extra: c.SpikeExtra,
			For:   c.Duration / 6,
		})
	}
	sort.Slice(p.Ops, func(i, j int) bool { return p.Ops[i].At < p.Ops[j].At })
	return p
}
