package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestSoakScheduleDeterministic(t *testing.T) {
	a := SoakSchedule(SoakConfig{Seed: 42})
	b := SoakSchedule(SoakConfig{Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := SoakSchedule(SoakConfig{Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestSoakScheduleShape(t *testing.T) {
	p := SoakSchedule(SoakConfig{Seed: 1})
	good, corrupt := p.Reloads()
	if good+corrupt < 5 {
		t.Errorf("default plan has %d reloads, want >= 5", good+corrupt)
	}
	if corrupt < 1 {
		t.Error("default plan has no corrupt reload")
	}
	if good < 1 {
		t.Error("default plan has no good reload")
	}
	spikes := 0
	var last time.Duration
	for _, op := range p.Ops {
		if op.At < last {
			t.Fatalf("ops out of order: %v after %v", op.At, last)
		}
		last = op.At
		if op.At < 0 || op.At > p.Duration {
			t.Errorf("op at %v outside soak duration %v", op.At, p.Duration)
		}
		if op.Kind == SoakSpike {
			spikes++
			if op.Extra <= 0 || op.For <= 0 {
				t.Errorf("spike with no extra load: %+v", op)
			}
		}
	}
	if spikes == 0 {
		t.Error("default plan has no load spikes")
	}
	if p.BaseClients <= 0 || p.Duration <= 0 {
		t.Errorf("degenerate plan: %+v", p)
	}
}

func TestSoakScheduleCustom(t *testing.T) {
	p := SoakSchedule(SoakConfig{Seed: 9, Reloads: 10, CorruptNth: 2, Duration: time.Second})
	good, corrupt := p.Reloads()
	if good != 5 || corrupt != 5 {
		t.Errorf("10 reloads with CorruptNth=2: %d good %d corrupt, want 5/5", good, corrupt)
	}
}
