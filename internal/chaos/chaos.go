// Package chaos generates deterministic fault-injection regimes for the
// simulator: endpoint outage windows, WAN degradation/flap events, and
// correlated fault storms, drawn from seeded Poisson processes and scaled
// by a single intensity knob. The paper's models treat the fault count
// Nflt as a first-class feature and blame residual error on unobserved
// disruption; this package makes that disruption an explicit, sweepable
// experimental variable (see core.ChaosSweep and the `wanperf chaos`
// command).
//
// A Config describes a regime's event rates and shapes; Plan expands it
// against a concrete world into a simulate.ChaosPlan — pure data, fully
// determined by Config.Seed, so every scenario replays exactly.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/simulate"
)

const week = 7 * 24 * 3600

// Config parameterizes a fault regime. All rates are expected event counts
// at Intensity 1; the generator scales them linearly with Intensity, so a
// sweep over intensities is a sweep over how disrupted the fabric is while
// keeping the regime's character fixed.
type Config struct {
	Seed      int64
	Horizon   float64 // seconds of simulated time the regime covers
	Intensity float64 // master knob; 0 disables every mechanism

	// Endpoint outages (DTN down).
	OutagesPerEndpointPerWeek float64
	OutageMeanDur             float64 // mean seconds, exponential
	OutageMaxDur              float64 // hard cap on one window
	OutageAbortProb           float64 // chance an outage aborts in-flight transfers

	// WAN degradation and flaps between random site pairs.
	WANFaultsPerWeek float64 // fabric-wide event rate
	WANFaultMeanDur  float64
	WANFaultMaxDur   float64
	WANFlapProb      float64 // chance an event is a flap (capacity ~0) vs degradation
	WANMinCapFactor  float64 // degradations draw CapFactor in [this, 0.9]

	// Correlated fault storms across the whole fabric.
	StormsPerWeek    float64
	StormMeanDur     float64
	StormMaxDur      float64
	StormHazardBoost float64 // hazard multiplier drawn in [2, 2+this]
}

// DefaultConfig is a production-flavored regime: roughly one outage per
// endpoint per two weeks, a few WAN events and one storm per week — rare
// enough that the fabric mostly works, frequent enough that every long log
// records disruption, as real WAN transfer studies find.
func DefaultConfig(seed int64, horizon float64) Config {
	return Config{
		Seed:      seed,
		Horizon:   horizon,
		Intensity: 1,

		OutagesPerEndpointPerWeek: 0.5,
		OutageMeanDur:             1800,
		OutageMaxDur:              4 * 3600,
		OutageAbortProb:           0.6,

		WANFaultsPerWeek: 4,
		WANFaultMeanDur:  900,
		WANFaultMaxDur:   2 * 3600,
		WANFlapProb:      0.35,
		WANMinCapFactor:  0.2,

		StormsPerWeek:    1,
		StormMeanDur:     3600,
		StormMaxDur:      6 * 3600,
		StormHazardBoost: 18,
	}
}

// WithIntensity returns a copy of the config at the given intensity.
func (c Config) WithIntensity(x float64) Config {
	c.Intensity = x
	return c
}

// Plan expands the regime into a concrete disruption schedule for the
// world. It is deterministic in (Config, world endpoint order) and returns
// an empty plan at zero intensity.
func Plan(c Config, w *simulate.World) *simulate.ChaosPlan {
	p := &simulate.ChaosPlan{}
	if c.Intensity <= 0 || c.Horizon <= 0 {
		return p
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Endpoint outages: one Poisson process per endpoint, in world order.
	outageMean := meanGap(c.OutagesPerEndpointPerWeek, c.Intensity)
	for _, ep := range w.Endpoints {
		for _, start := range poissonTimes(rng, c.Horizon, outageMean) {
			p.Outages = append(p.Outages, simulate.OutageEvent{
				EndpointID: ep.ID,
				Start:      start,
				End:        start + window(rng, c.OutageMeanDur, c.OutageMaxDur),
				Abort:      rng.Float64() < c.OutageAbortProb,
			})
		}
	}

	// WAN events between random distinct site pairs.
	sites := siteNames(w)
	if len(sites) >= 2 {
		for _, start := range poissonTimes(rng, c.Horizon, meanGap(c.WANFaultsPerWeek, c.Intensity)) {
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			for b == a {
				b = sites[rng.Intn(len(sites))]
			}
			factor := c.WANMinCapFactor + rng.Float64()*(0.9-c.WANMinCapFactor)
			dur := window(rng, c.WANFaultMeanDur, c.WANFaultMaxDur)
			if rng.Float64() < c.WANFlapProb {
				// A flap: the path all but disappears, briefly.
				factor = 0.02
				dur = 30 + rng.Float64()*270
			}
			p.WANFaults = append(p.WANFaults, simulate.WANFault{
				SiteA: a, SiteB: b,
				Start: start, End: start + dur,
				CapFactor: factor,
			})
		}
	}

	// Fabric-wide fault storms.
	for _, start := range poissonTimes(rng, c.Horizon, meanGap(c.StormsPerWeek, c.Intensity)) {
		p.Storms = append(p.Storms, simulate.FaultStorm{
			Start:        start,
			End:          start + window(rng, c.StormMeanDur, c.StormMaxDur),
			HazardFactor: 2 + rng.Float64()*c.StormHazardBoost,
		})
	}
	return p
}

// meanGap converts an events-per-week rate at the given intensity into a
// mean inter-event gap in seconds (0 = mechanism off).
func meanGap(perWeek, intensity float64) float64 {
	rate := perWeek * intensity / week
	if rate <= 0 {
		return 0 // poissonTimes treats non-positive mean as disabled
	}
	return 1 / rate
}

// poissonTimes samples event start times on [0, horizon) with the given
// mean gap; a non-positive mean yields no events.
func poissonTimes(rng *rand.Rand, horizon, mean float64) []float64 {
	if mean <= 0 {
		return nil
	}
	var out []float64
	for t := rng.ExpFloat64() * mean; t < horizon; t += rng.ExpFloat64() * mean {
		out = append(out, t)
	}
	return out
}

// window draws an exponential duration with the given mean, capped.
func window(rng *rand.Rand, mean, max float64) float64 {
	d := rng.ExpFloat64() * mean
	if max > 0 && d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	return d
}

// siteNames returns the distinct site names of the world's endpoints in
// first-seen (deterministic) order.
func siteNames(w *simulate.World) []string {
	seen := map[string]bool{}
	var out []string
	for _, ep := range w.Endpoints {
		if !seen[ep.Site.Name] {
			seen[ep.Site.Name] = true
			out = append(out, ep.Site.Name)
		}
	}
	return out
}

// EventCount returns the total number of scheduled disruptions in a plan,
// handy for reporting and tests.
func EventCount(p *simulate.ChaosPlan) int {
	if p == nil {
		return 0
	}
	return len(p.Outages) + len(p.WANFaults) + len(p.Storms)
}

// Describe summarizes a plan as sorted one-line strings (for logs and
// debugging); it does not mutate the plan.
func Describe(p *simulate.ChaosPlan) []string {
	if p == nil {
		return nil
	}
	var out []string
	for _, o := range p.Outages {
		mode := "stall"
		if o.Abort {
			mode = "abort"
		}
		out = append(out, fmt.Sprintf("outage %s [%.0f, %.0f) %s", o.EndpointID, o.Start, o.End, mode))
	}
	for _, f := range p.WANFaults {
		out = append(out, fmt.Sprintf("wan %s~%s [%.0f, %.0f) cap×%.2f", f.SiteA, f.SiteB, f.Start, f.End, f.CapFactor))
	}
	for _, s := range p.Storms {
		out = append(out, fmt.Sprintf("storm [%.0f, %.0f) hazard×%.1f", s.Start, s.End, s.HazardFactor))
	}
	sort.Strings(out)
	return out
}
