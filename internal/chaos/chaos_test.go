package chaos

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/logs"
	"repro/internal/simulate"
)

// testWorld builds a small multi-site world for regime generation.
func testWorld(t *testing.T) *simulate.World {
	t.Helper()
	names := []string{"ANL", "BNL", "NERSC", "ORNL"}
	var eps []*simulate.Endpoint
	for _, n := range names {
		site, ok := geo.FindSite(n)
		if !ok {
			t.Fatalf("site %s not in catalogue", n)
		}
		eps = append(eps, &simulate.Endpoint{
			ID: n + "-dtn", Site: site, Type: logs.GCS,
			DiskReadMBps:    800,
			DiskWriteMBps:   600,
			NICMBps:         1250,
			PerProcDiskMBps: 200,
			CPUKnee:         1000,
			CPUSteep:        2,
		})
	}
	return simulate.NewWorld(eps)
}

func TestPlanDeterministic(t *testing.T) {
	w := testWorld(t)
	c := DefaultConfig(7, 14*24*3600)
	a := Plan(c, w)
	b := Plan(c, w)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config and world produced different plans")
	}
	if EventCount(a) == 0 {
		t.Fatal("default regime over two weeks produced no events")
	}
	other := Plan(DefaultConfig(8, 14*24*3600), w)
	if reflect.DeepEqual(a, other) {
		t.Error("different seeds produced identical plans")
	}
}

func TestPlanZeroIntensityEmpty(t *testing.T) {
	w := testWorld(t)
	p := Plan(DefaultConfig(1, week).WithIntensity(0), w)
	if !p.Empty() {
		t.Fatalf("zero intensity produced %d events", EventCount(p))
	}
	if !Plan(DefaultConfig(1, 0), w).Empty() {
		t.Error("zero horizon should produce an empty plan")
	}
}

func TestPlanIntensityScaling(t *testing.T) {
	w := testWorld(t)
	base := DefaultConfig(3, 60*24*3600)
	lo := EventCount(Plan(base.WithIntensity(0.5), w))
	hi := EventCount(Plan(base.WithIntensity(4), w))
	if hi <= lo {
		t.Errorf("intensity 4 produced %d events, intensity 0.5 produced %d", hi, lo)
	}
}

func TestPlanValidates(t *testing.T) {
	w := testWorld(t)
	for _, x := range []float64{0.25, 1, 3} {
		p := Plan(DefaultConfig(11, 30*24*3600).WithIntensity(x), w)
		if err := p.Validate(w); err != nil {
			t.Errorf("intensity %g: generated plan invalid: %v", x, err)
		}
	}
}

func TestPlanShapes(t *testing.T) {
	w := testWorld(t)
	p := Plan(DefaultConfig(5, 90*24*3600), w)
	for _, o := range p.Outages {
		if o.End <= o.Start {
			t.Errorf("outage window [%g, %g] inverted", o.Start, o.End)
		}
	}
	for _, f := range p.WANFaults {
		if f.SiteA == f.SiteB {
			t.Errorf("WAN fault with identical sites %q", f.SiteA)
		}
		if f.CapFactor <= 0 || f.CapFactor >= 1 {
			t.Errorf("WAN CapFactor %g outside (0, 1)", f.CapFactor)
		}
	}
	for _, s := range p.Storms {
		if s.HazardFactor < 2 {
			t.Errorf("storm hazard factor %g below its floor", s.HazardFactor)
		}
		if math.IsInf(s.End, 0) || s.End <= s.Start {
			t.Errorf("storm window [%g, %g] malformed", s.Start, s.End)
		}
	}
	if got := len(Describe(p)); got != EventCount(p) {
		t.Errorf("Describe produced %d lines for %d events", got, EventCount(p))
	}
}
