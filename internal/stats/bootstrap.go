package stats

import (
	"math/rand"
	"sort"
)

// Bootstrap confidence intervals for the error metrics. A single MdAPE
// hides how certain it is — with a few hundred test transfers per edge, a
// percentile bootstrap gives honest error bars for statements like
// "nonlinear beats linear on this edge".

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// BootstrapCI estimates a confidence interval for statistic(sample) by the
// percentile bootstrap: resamples of the input with replacement, statistic
// recomputed on each, the (α/2, 1−α/2) quantiles of the resampled
// statistics reported. level is the confidence level (e.g. 0.95);
// resamples ≤ 0 defaults to 1000. Deterministic in seed. Returns ErrEmpty
// for empty input.
func BootstrapCI(sample []float64, statistic func([]float64) float64, level float64, resamples int, seed int64) (CI, error) {
	if len(sample) == 0 {
		return CI{}, ErrEmpty
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	stats := make([]float64, resamples)
	buf := make([]float64, len(sample))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = sample[rng.Intn(len(sample))]
		}
		stats[r] = statistic(buf)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	return CI{
		Point: statistic(sample),
		Lo:    percentileSorted(stats, alpha*100),
		Hi:    percentileSorted(stats, (1-alpha)*100),
	}, nil
}

// MedianCI is the common case: a bootstrap interval around the median,
// e.g. of per-transfer absolute percentage errors.
func MedianCI(sample []float64, level float64, resamples int, seed int64) (CI, error) {
	return BootstrapCI(sample, func(xs []float64) float64 {
		m, _ := Median(xs)
		return m
	}, level, resamples, seed)
}
