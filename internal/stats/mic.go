package stats

import (
	"math"
	"sort"
)

// MIC computes the maximal information coefficient of Reshef et al. (2011),
// the nonlinear dependence measure the paper uses in Table 5 to expose
// relationships between features and transfer rate that Pearson correlation
// misses. The implementation follows the MINE ApproxMaxMI scheme: for each
// grid shape (nx, ny) with nx·ny ≤ B(n) = n^exponent, one axis is
// equipartitioned and a dynamic program finds the partition of the other
// axis that maximizes mutual information; the characteristic-matrix entry is
// the larger of the two orientations, normalized by log(min(nx, ny)); MIC is
// the maximum entry.
//
// MICConfig controls the approximation.
type MICConfig struct {
	// Exponent in B(n) = n^Exponent. Reshef et al. recommend 0.6.
	Exponent float64
	// ClumpFactor c: the optimized axis is pre-merged into at most c·nx
	// superclumps before the DP. Larger is slower and more exact.
	ClumpFactor int
	// MaxSamples caps the number of points considered; larger inputs are
	// deterministically subsampled (every k-th point of the x-sorted
	// order). Zero means no cap.
	MaxSamples int
}

// DefaultMICConfig returns the configuration used throughout the
// reproduction: B(n)=n^0.6, clump factor 5, at most 500 samples.
func DefaultMICConfig() MICConfig {
	return MICConfig{Exponent: 0.6, ClumpFactor: 5, MaxSamples: 500}
}

// MIC computes the maximal information coefficient of (x, y) with the
// default configuration. The result lies in [0, 1]; it is 0 when either
// variable is constant.
func MIC(x, y []float64) (float64, error) {
	return MICWithConfig(x, y, DefaultMICConfig())
}

// MICWithConfig computes the maximal information coefficient with an
// explicit configuration.
func MICWithConfig(x, y []float64, cfg MICConfig) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	n := len(x)
	if n < 4 {
		return 0, ErrEmpty
	}
	if constant(x) || constant(y) {
		return 0, nil
	}
	if cfg.Exponent <= 0 {
		cfg.Exponent = 0.6
	}
	if cfg.ClumpFactor <= 0 {
		cfg.ClumpFactor = 5
	}

	best := 0.0
	// Orientation 1: equipartition y, optimize x. Orientation 2: swap the
	// roles. Each orientation re-sorts by its own optimized axis — the DP
	// requires its first argument in ascending order.
	for orient := 0; orient < 2; orient++ {
		var ax, ay []float64
		if orient == 0 {
			ax, ay = pairs(x, y)
		} else {
			ax, ay = pairs(y, x)
		}
		if cfg.MaxSamples > 0 && len(ax) > cfg.MaxSamples {
			ax, ay = subsample(ax, ay, cfg.MaxSamples)
		}
		b := int(math.Max(4, math.Pow(float64(len(ax)), cfg.Exponent)))
		// ny ranges over the equipartitioned axis; nx = B/ny limits the DP.
		for ny := 2; ny <= b/2; ny++ {
			maxNx := b / ny
			if maxNx < 2 {
				break
			}
			v := approxMaxMI(ax, ay, maxNx, ny, cfg.ClumpFactor)
			for nx := 2; nx <= maxNx; nx++ {
				norm := math.Log(float64(min(nx, ny)))
				if norm <= 0 {
					continue
				}
				e := v[nx] / norm
				if e > best {
					best = e
				}
			}
		}
	}
	if best > 1 {
		best = 1
	}
	return best, nil
}

func constant(xs []float64) bool {
	for _, v := range xs[1:] {
		if v != xs[0] {
			return false
		}
	}
	return true
}

// pairs returns x and y jointly sorted by x (ties broken by y) so that
// downstream code can assume x-sorted order.
func pairs(x, y []float64) ([]float64, []float64) {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] < x[idx[b]]
		}
		return y[idx[a]] < y[idx[b]]
	})
	sx := make([]float64, n)
	sy := make([]float64, n)
	for i, j := range idx {
		sx[i] = x[j]
		sy[i] = y[j]
	}
	return sx, sy
}

// subsample keeps every k-th point of the x-sorted order, deterministically.
func subsample(x, y []float64, maxN int) ([]float64, []float64) {
	n := len(x)
	ox := make([]float64, 0, maxN)
	oy := make([]float64, 0, maxN)
	for i := 0; i < maxN; i++ {
		j := i * n / maxN
		ox = append(ox, x[j])
		oy = append(oy, y[j])
	}
	return ox, oy
}

// equipartition assigns each point (given in sorted order of the axis
// value) to one of k bins of near-equal occupancy, keeping equal values in
// the same bin. It returns the assignment per point and the number of bins
// actually used.
func equipartition(vals []float64, k int) ([]int, int) {
	n := len(vals)
	assign := make([]int, n)
	target := float64(n) / float64(k)
	bin := 0
	placed := 0
	i := 0
	for i < n {
		// Extent of the tie group starting at i.
		j := i
		for j+1 < n && vals[j+1] == vals[i] {
			j++
		}
		groupLen := j - i + 1
		// Advance to the next bin if this bin is full enough and adding the
		// group overshoots more than leaving it out undershoots.
		if placed > 0 && bin < k-1 {
			over := math.Abs(float64(placed+groupLen) - target)
			under := math.Abs(float64(placed) - target)
			if over >= under {
				bin++
				placed = 0
			}
		}
		for t := i; t <= j; t++ {
			assign[t] = bin
		}
		placed += groupLen
		i = j + 1
	}
	return assign, bin + 1
}

// approxMaxMI implements the OptimizeXAxis dynamic program. The inputs are
// x-sorted paired values; y is equipartitioned into ny bins and the DP finds,
// for every nx in [2, maxNx], the x-partition into at most nx columns that
// maximizes I(P;Q). The returned slice v satisfies v[nx] = max MI (nats).
func approxMaxMI(x, y []float64, maxNx, ny, clumpFactor int) []float64 {
	n := len(x)

	// Equipartition the y axis. Requires y-sorted values to bin, then map
	// back to x order via rank.
	ySorted := make([]float64, n)
	copy(ySorted, y)
	sort.Float64s(ySorted)
	binOfSorted, q := equipartition(ySorted, ny)
	// Map each y value to its bin. Equal values share a bin, so a search on
	// the sorted array is safe.
	yBin := make([]int, n)
	for i, v := range y {
		j := sort.SearchFloat64s(ySorted, v)
		yBin[i] = binOfSorted[j]
	}

	// Build clumps. A clump is a maximal run of consecutive points (in x
	// order) that may not be split: equal x values always stay together, and
	// consecutive points in the same y bin are merged since no optimal
	// partition separates them.
	clumpEnd := make([]int, 0, n) // exclusive end index of each clump
	i := 0
	for i < n {
		j := i + 1
		for j < n && (x[j] == x[j-1] || yBin[j] == yBin[i]) {
			j++
		}
		clumpEnd = append(clumpEnd, j)
		i = j
	}

	// Merge into at most clumpFactor·maxNx superclumps by equipartitioning
	// clump sizes.
	maxClumps := clumpFactor * maxNx
	if len(clumpEnd) > maxClumps {
		clumpEnd = mergeClumps(clumpEnd, maxClumps)
	}
	m := len(clumpEnd)

	// cum[i][b] = number of points in clumps [0, i) with y-bin b.
	cum := make([][]int, m+1)
	cum[0] = make([]int, q)
	prev := 0
	for c := 0; c < m; c++ {
		row := make([]int, q)
		copy(row, cum[c])
		for p := prev; p < clumpEnd[c]; p++ {
			row[yBin[p]]++
		}
		cum[c+1] = row
		prev = clumpEnd[c]
	}
	csize := func(i int) int { return clumpEnd[i-1] } // points in first i clumps
	// h(s,t) = Σ_q p log p for the column spanning clumps (s, t], with p
	// normalized by the column size (negative conditional entropy term).
	h := func(s, t int) float64 {
		tot := csize(t) - sOr0(clumpEnd, s)
		if tot == 0 {
			return 0
		}
		var sum float64
		for b := 0; b < q; b++ {
			c := cum[t][b] - cum[s][b]
			if c > 0 {
				p := float64(c) / float64(tot)
				sum += p * math.Log(p)
			}
		}
		return sum
	}

	// DP: G[t][l] = max over partitions of first t clumps into exactly l
	// columns of Σ_j (size_j/c_t)·h(column j)  (= H(P) − H(P,Q) up to sign
	// conventions; see package tests for the identity check).
	L := maxNx
	G := make([][]float64, m+1)
	for t := 0; t <= m; t++ {
		G[t] = make([]float64, L+1)
		for l := range G[t] {
			G[t][l] = math.Inf(-1)
		}
	}
	for t := 1; t <= m; t++ {
		G[t][1] = h(0, t)
	}
	for l := 2; l <= L; l++ {
		for t := l; t <= m; t++ {
			ct := float64(csize(t))
			best := math.Inf(-1)
			for s := l - 1; s < t; s++ {
				cs := float64(csize(s))
				v := cs/ct*G[s][l-1] + (ct-cs)/ct*h(s, t)
				if v > best {
					best = v
				}
			}
			G[t][l] = best
		}
	}

	// H(Q) over all points.
	hq := 0.0
	for b := 0; b < q; b++ {
		c := cum[m][b]
		if c > 0 {
			p := float64(c) / float64(n)
			hq -= p * math.Log(p)
		}
	}

	// v[nx] = best MI over at most nx columns = H(Q) + max_{l ≤ nx} G[m][l].
	v := make([]float64, L+1)
	run := math.Inf(-1)
	for l := 1; l <= L; l++ {
		if l <= m && G[m][l] > run {
			run = G[m][l]
		}
		mi := hq + run
		if mi < 0 {
			mi = 0
		}
		v[l] = mi
	}
	return v
}

func sOr0(end []int, s int) int {
	if s == 0 {
		return 0
	}
	return end[s-1]
}

// mergeClumps reduces the clump boundary list to at most k entries by
// choosing boundaries closest to an equipartition of the points.
func mergeClumps(end []int, k int) []int {
	n := end[len(end)-1]
	out := make([]int, 0, k)
	target := 0
	for i := 1; i <= k; i++ {
		want := i * n / k
		// Choose the existing boundary closest to want but beyond target.
		bestIdx := -1
		bestDist := n + 1
		for _, e := range end {
			if e <= target {
				continue
			}
			d := e - want
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				bestDist = d
				bestIdx = e
			}
		}
		if bestIdx < 0 {
			break
		}
		out = append(out, bestIdx)
		target = bestIdx
		if bestIdx == n {
			break
		}
	}
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
