package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Errorf("Min = %g, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 7 {
		t.Errorf("Max = %g, %v", hi, err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Min(nil) should be ErrEmpty")
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Max(nil) should be ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, _ := Percentile([]float64{0, 10}, 25)
	if !almost(got, 2.5, 1e-12) {
		t.Errorf("P25 of {0,10} = %g, want 2.5", got)
	}
}

func TestPercentileClampsAndSingle(t *testing.T) {
	got, _ := Percentile([]float64{42}, 99)
	if got != 42 {
		t.Errorf("single-element percentile = %g", got)
	}
	lo, _ := Percentile([]float64{1, 2}, -5)
	if lo != 1 {
		t.Errorf("clamped low percentile = %g", lo)
	}
	hi, _ := Percentile([]float64{1, 2}, 200)
	if hi != 2 {
		t.Errorf("clamped high percentile = %g", hi)
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Error("empty percentile should be ErrEmpty")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{5, 3, 1, 4, 2}
	got, err := Percentiles(xs, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Percentiles = %v", got)
	}
}

func TestMedian(t *testing.T) {
	m, _ := Median([]float64{9, 1, 5})
	if m != 5 {
		t.Errorf("Median = %g, want 5", m)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	cc, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cc, 1, 1e-12) {
		t.Errorf("CC = %g, want 1", cc)
	}
	neg := []float64{8, 6, 4, 2}
	cc, _ = Pearson(x, neg)
	if !almost(cc, -1, 1e-12) {
		t.Errorf("CC = %g, want -1", cc)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	cc, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || cc != 0 {
		t.Errorf("constant input: cc=%g err=%v, want 0, nil", cc, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Error("length mismatch should be ErrLength")
	}
	if _, err := Pearson(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty should be ErrEmpty")
	}
}

func TestPearsonBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		cc, err := Pearson(x, y)
		return err == nil && cc >= -1-1e-12 && cc <= 1+1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform has Spearman 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rho, 1, 1e-12) {
		t.Errorf("Spearman = %g, want 1", rho)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", got, want)
			break
		}
	}
}

func TestAPE(t *testing.T) {
	apes, err := APE([]float64{100, 200, 0}, []float64{110, 180, 5})
	if err != nil {
		t.Fatal(err)
	}
	// The zero-actual pair is skipped.
	if len(apes) != 2 {
		t.Fatalf("len = %d, want 2", len(apes))
	}
	if !almost(apes[0], 10, 1e-12) || !almost(apes[1], 10, 1e-12) {
		t.Errorf("APEs = %v", apes)
	}
}

func TestMdAPE(t *testing.T) {
	md, err := MdAPE([]float64{100, 100, 100}, []float64{101, 105, 150})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(md, 5, 1e-12) {
		t.Errorf("MdAPE = %g, want 5", md)
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{100, 100}, []float64{90, 130})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m, 20, 1e-12) {
		t.Errorf("MAPE = %g, want 20", m)
	}
}

func TestPercentileAPE(t *testing.T) {
	actual := make([]float64, 100)
	pred := make([]float64, 100)
	for i := range actual {
		actual[i] = 100
		pred[i] = 100 + float64(i) // APE = i%
	}
	p95, err := PercentileAPE(actual, pred, 95)
	if err != nil {
		t.Fatal(err)
	}
	if p95 < 93 || p95 > 96 {
		t.Errorf("p95 APE = %g, want ~94", p95)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	r, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %g", r)
	}
	m, _ := MAE([]float64{0, 0}, []float64{3, -4})
	if !almost(m, 3.5, 1e-12) {
		t.Errorf("MAE = %g, want 3.5", m)
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	perfect, _ := R2(actual, actual)
	if !almost(perfect, 1, 1e-12) {
		t.Errorf("perfect R2 = %g", perfect)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	zero, _ := R2(actual, meanPred)
	if !almost(zero, 0, 1e-12) {
		t.Errorf("mean-prediction R2 = %g, want 0", zero)
	}
	constR2, _ := R2([]float64{5, 5}, []float64{4, 6})
	if constR2 != 0 {
		t.Errorf("constant-actual R2 = %g, want 0", constR2)
	}
}

func TestMetricErrorPaths(t *testing.T) {
	if _, err := MdAPE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLength) {
		t.Error("MdAPE length mismatch")
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("RMSE empty")
	}
	if _, err := MAE([]float64{1}, []float64{}); !errors.Is(err, ErrLength) {
		t.Error("MAE length mismatch")
	}
	if _, err := MAPE([]float64{0}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("MAPE with all-zero actuals should be ErrEmpty")
	}
}

// TestMdAPEScaleInvariance: scaling both series leaves percentage errors
// unchanged.
func TestMdAPEScaleInvariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15
		a := make([]float64, n)
		p := make([]float64, n)
		for i := range a {
			a[i] = 1 + rng.Float64()*100
			p[i] = 1 + rng.Float64()*100
		}
		m1, err1 := MdAPE(a, p)
		a2 := make([]float64, n)
		p2 := make([]float64, n)
		for i := range a {
			a2[i] = a[i] * 7.5
			p2[i] = p[i] * 7.5
		}
		m2, err2 := MdAPE(a2, p2)
		return err1 == nil && err2 == nil && almost(m1, m2, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
