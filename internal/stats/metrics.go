package stats

import "math"

// APE returns the absolute percentage errors |ŷ−y|/|y|·100 for each pair,
// skipping pairs whose true value is zero (their percentage error is
// undefined). The returned slice may therefore be shorter than the inputs.
func APE(actual, predicted []float64) ([]float64, error) {
	if len(actual) != len(predicted) {
		return nil, ErrLength
	}
	out := make([]float64, 0, len(actual))
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		out = append(out, math.Abs(predicted[i]-actual[i])/math.Abs(actual[i])*100)
	}
	return out, nil
}

// MdAPE returns the median absolute percentage error, the paper's headline
// accuracy metric (§1, §5.3, §5.4).
func MdAPE(actual, predicted []float64) (float64, error) {
	apes, err := APE(actual, predicted)
	if err != nil {
		return 0, err
	}
	return Median(apes)
}

// MAPE returns the mean absolute percentage error.
func MAPE(actual, predicted []float64) (float64, error) {
	apes, err := APE(actual, predicted)
	if err != nil {
		return 0, err
	}
	if len(apes) == 0 {
		return 0, ErrEmpty
	}
	return Mean(apes), nil
}

// PercentileAPE returns the p-th percentile of the absolute percentage
// errors; §5.5.2 reports 95th-percentile errors.
func PercentileAPE(actual, predicted []float64, p float64) (float64, error) {
	apes, err := APE(actual, predicted)
	if err != nil {
		return 0, err
	}
	return Percentile(apes, p)
}

// RMSE returns the root-mean-square error between actual and predicted.
func RMSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLength
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		d := predicted[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(actual))), nil
}

// MAE returns the mean absolute error between actual and predicted.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLength
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range actual {
		s += math.Abs(predicted[i] - actual[i])
	}
	return s / float64(len(actual)), nil
}

// R2 returns the coefficient of determination. A model predicting the mean
// scores 0; a perfect model scores 1. When the actual values have zero
// variance, R2 returns 0.
func R2(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLength
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	m := Mean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		d := actual[i] - predicted[i]
		ssRes += d * d
		t := actual[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}
