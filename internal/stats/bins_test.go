package stats

import (
	"math/rand"
	"testing"
)

func TestQuantileBucketsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	buckets := QuantileBuckets(xs, 10)
	seen := map[int]bool{}
	total := 0
	for _, b := range buckets {
		for _, i := range b.Indices {
			if seen[i] {
				t.Fatalf("index %d appears in two buckets", i)
			}
			seen[i] = true
			if xs[i] < b.Lo || xs[i] > b.Hi {
				t.Fatalf("value %g outside bucket bounds [%g,%g]", xs[i], b.Lo, b.Hi)
			}
		}
		total += len(b.Indices)
	}
	if total != len(xs) {
		t.Fatalf("buckets cover %d of %d points", total, len(xs))
	}
}

func TestQuantileBucketsNearEqualSizes(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	buckets := QuantileBuckets(xs, 20)
	if len(buckets) != 20 {
		t.Fatalf("got %d buckets, want 20", len(buckets))
	}
	for i, b := range buckets {
		if len(b.Indices) < 8 || len(b.Indices) > 12 {
			t.Errorf("bucket %d has %d members, want ~10", i, len(b.Indices))
		}
	}
}

func TestQuantileBucketsOrdered(t *testing.T) {
	xs := []float64{5, 2, 9, 1, 7, 3, 8, 4, 6, 0}
	buckets := QuantileBuckets(xs, 5)
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Lo < buckets[i-1].Hi {
			t.Errorf("bucket %d overlaps previous: [%g,%g] after [%g,%g]",
				i, buckets[i].Lo, buckets[i].Hi, buckets[i-1].Lo, buckets[i-1].Hi)
		}
	}
}

func TestQuantileBucketsDegenerate(t *testing.T) {
	if QuantileBuckets(nil, 5) != nil {
		t.Error("nil input should give nil")
	}
	if QuantileBuckets([]float64{1}, 0) != nil {
		t.Error("zero buckets should give nil")
	}
	// More buckets than points: collapses to len(points).
	b := QuantileBuckets([]float64{1, 2}, 10)
	total := 0
	for _, x := range b {
		total += len(x.Indices)
	}
	if total != 2 {
		t.Errorf("degenerate bucketing lost points: %d", total)
	}
}

func TestQuantileBucketsAllEqual(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	buckets := QuantileBuckets(xs, 3)
	total := 0
	for _, b := range buckets {
		total += len(b.Indices)
	}
	if total != 4 {
		t.Fatalf("equal-value bucketing covers %d of 4", total)
	}
}

func TestUniformBuckets(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	buckets := UniformBuckets(xs, 5)
	if len(buckets) != 5 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	// Max value lands in the last bucket.
	last := buckets[4]
	found := false
	for _, i := range last.Indices {
		if xs[i] == 10 {
			found = true
		}
	}
	if !found {
		t.Error("max value missing from last bucket")
	}
	total := 0
	for _, b := range buckets {
		total += len(b.Indices)
	}
	if total != len(xs) {
		t.Errorf("covered %d of %d", total, len(xs))
	}
}

func TestUniformBucketsConstant(t *testing.T) {
	buckets := UniformBuckets([]float64{3, 3, 3}, 4)
	if len(buckets) != 1 || len(buckets[0].Indices) != 3 {
		t.Errorf("constant input should give one full bucket, got %+v", buckets)
	}
}
