package stats

import (
	"math"
	"sort"
)

// Bucket is one group of values produced by a binning operation.
type Bucket struct {
	Lo, Hi  float64 // bucket bounds (Lo inclusive, Hi exclusive except last)
	Indices []int   // indices of the member points in the original input
}

// QuantileBuckets partitions the indices of xs into k buckets of near-equal
// occupancy ordered by value (the grouping Figure 5 uses for total transfer
// size). Fewer than k buckets are returned when duplicates make an
// equipartition impossible.
func QuantileBuckets(xs []float64, k int) []Bucket {
	n := len(xs)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	assign, used := equipartition(sortedBy(xs, idx), k)
	buckets := make([]Bucket, used)
	for pos, origIdx := range idx {
		b := assign[pos]
		buckets[b].Indices = append(buckets[b].Indices, origIdx)
	}
	for i := range buckets {
		if len(buckets[i].Indices) == 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, j := range buckets[i].Indices {
			if xs[j] < lo {
				lo = xs[j]
			}
			if xs[j] > hi {
				hi = xs[j]
			}
		}
		buckets[i].Lo, buckets[i].Hi = lo, hi
	}
	// Drop empty buckets (possible when ties collapse bins).
	out := buckets[:0]
	for _, b := range buckets {
		if len(b.Indices) > 0 {
			out = append(out, b)
		}
	}
	return out
}

func sortedBy(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// UniformBuckets partitions the index set of xs into k equal-width buckets
// spanning [min, max].
func UniformBuckets(xs []float64, k int) []Bucket {
	n := len(xs)
	if n == 0 || k <= 0 {
		return nil
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo == hi {
		return []Bucket{{Lo: lo, Hi: hi, Indices: seq(n)}}
	}
	width := (hi - lo) / float64(k)
	buckets := make([]Bucket, k)
	for i := range buckets {
		buckets[i].Lo = lo + float64(i)*width
		buckets[i].Hi = lo + float64(i+1)*width
	}
	for i, x := range xs {
		b := int((x - lo) / width)
		if b >= k {
			b = k - 1
		}
		buckets[b].Indices = append(buckets[b].Indices, i)
	}
	return buckets
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
