package stats

import (
	"errors"
	"math/rand"
	"testing"
)

func TestMedianCICoversTruth(t *testing.T) {
	// Samples from a known distribution: the CI should cover the true
	// median in the vast majority of trials.
	rng := rand.New(rand.NewSource(1))
	covered := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		sample := make([]float64, 200)
		for i := range sample {
			sample[i] = 10 + rng.NormFloat64()*3
		}
		ci, err := MedianCI(sample, 0.95, 400, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(10) {
			covered++
		}
		if ci.Lo > ci.Point || ci.Hi < ci.Point {
			t.Fatalf("interval [%g, %g] excludes its own point %g", ci.Lo, ci.Hi, ci.Point)
		}
	}
	if covered < trials*8/10 {
		t.Errorf("95%% CI covered the truth in only %d/%d trials", covered, trials)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := MedianCI(sample, 0.95, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MedianCI(sample, 0.95, 200, 7)
	if a != b {
		t.Error("same seed gave different intervals")
	}
}

func TestBootstrapCIWidensWithSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tight := make([]float64, 100)
	wide := make([]float64, 100)
	for i := range tight {
		tight[i] = 5 + rng.NormFloat64()*0.1
		wide[i] = 5 + rng.NormFloat64()*5
	}
	ciT, _ := MedianCI(tight, 0.95, 400, 1)
	ciW, _ := MedianCI(wide, 0.95, 400, 1)
	if ciW.Hi-ciW.Lo <= ciT.Hi-ciT.Lo {
		t.Errorf("wide-spread CI [%g,%g] not wider than tight [%g,%g]", ciW.Lo, ciW.Hi, ciT.Lo, ciT.Hi)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	if _, err := MedianCI(nil, 0.95, 100, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestBootstrapCIDefaults(t *testing.T) {
	sample := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	ci, err := BootstrapCI(sample, Mean, -1, 0, 2) // bad level/resamples fall back
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Hi {
		t.Error("degenerate interval")
	}
}
