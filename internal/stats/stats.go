// Package stats provides the statistical machinery the paper's analysis
// rests on: descriptive statistics and percentiles (Table 3), Pearson
// correlation and the maximal information coefficient (Table 5), and the
// prediction-error metrics used throughout §5 (MdAPE, MAPE, RMSE, R²).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no data.
var ErrEmpty = errors.New("stats: empty input")

// ErrLength is returned when paired inputs have different lengths.
var ErrLength = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divides by n), or 0 when
// fewer than two values are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes a percentile of an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns several percentiles of xs in one sort.
func Percentiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Pearson returns the Pearson linear correlation coefficient between x and
// y. It returns 0 when either input has zero variance (the paper marks such
// features "–" in Table 5).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient between x and
// y (Pearson correlation of the ranks, with tied values receiving their
// average rank).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	if len(x) == 0 {
		return 0, ErrEmpty
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of xs with ties assigned average ranks.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
