package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func genSeries(n int, seed int64, f func(x float64, rng *rand.Rand) float64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*10 - 5
		ys[i] = f(xs[i], rng)
	}
	return
}

func TestMICLinear(t *testing.T) {
	xs, ys := genSeries(400, 1, func(x float64, _ *rand.Rand) float64 { return 3*x + 1 })
	mic, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if mic < 0.9 {
		t.Errorf("MIC(linear) = %.3f, want >= 0.9", mic)
	}
}

func TestMICParabola(t *testing.T) {
	// Nonlinear but deterministic: MIC should stay high while |Pearson|
	// is near zero — exactly the Table 5 phenomenon.
	xs, ys := genSeries(400, 2, func(x float64, _ *rand.Rand) float64 { return x * x })
	mic, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := Pearson(xs, ys)
	if mic < 0.8 {
		t.Errorf("MIC(parabola) = %.3f, want >= 0.8", mic)
	}
	if math.Abs(cc) > 0.2 {
		t.Errorf("|CC|(parabola) = %.3f, want near 0", math.Abs(cc))
	}
}

func TestMICIndependent(t *testing.T) {
	xs, ys := genSeries(500, 3, func(_ float64, rng *rand.Rand) float64 { return rng.NormFloat64() })
	mic, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if mic > 0.35 {
		t.Errorf("MIC(independent) = %.3f, want small", mic)
	}
}

func TestMICNoisyLinearBetweenExtremes(t *testing.T) {
	xs, ys := genSeries(500, 4, func(x float64, rng *rand.Rand) float64 {
		return x + rng.NormFloat64()*2
	})
	mic, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := MIC(xs, xs)
	if mic >= clean {
		t.Errorf("noisy MIC %.3f should be below clean MIC %.3f", mic, clean)
	}
	if mic < 0.15 {
		t.Errorf("noisy-linear MIC %.3f too small; dependence exists", mic)
	}
}

func TestMICConstantInput(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 1}
	ys := []float64{1, 2, 3, 4, 5, 6}
	mic, err := MIC(xs, ys)
	if err != nil || mic != 0 {
		t.Errorf("constant x: mic=%g err=%v, want 0, nil", mic, err)
	}
	mic, err = MIC(ys, xs)
	if err != nil || mic != 0 {
		t.Errorf("constant y: mic=%g err=%v, want 0, nil", mic, err)
	}
}

func TestMICErrors(t *testing.T) {
	if _, err := MIC([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrLength) {
		t.Error("length mismatch should be ErrLength")
	}
	if _, err := MIC([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrEmpty) {
		t.Error("too-short input should be ErrEmpty")
	}
}

func TestMICBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64() + xs[i]*float64(trial%3)
		}
		mic, err := MIC(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if mic < 0 || mic > 1 {
			t.Fatalf("MIC out of [0,1]: %g", mic)
		}
	}
}

func TestMICSymmetryApprox(t *testing.T) {
	// MIC is defined symmetrically; the approximation runs both
	// orientations, so swapping inputs must give the same value.
	xs, ys := genSeries(300, 6, func(x float64, rng *rand.Rand) float64 {
		return math.Sin(x) + rng.NormFloat64()*0.1
	})
	m1, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MIC(ys, xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1-m2) > 1e-12 {
		t.Errorf("MIC not symmetric: %g vs %g", m1, m2)
	}
}

func TestMICSubsampleCap(t *testing.T) {
	// Large inputs must be subsampled, not rejected, and still detect
	// strong dependence.
	xs, ys := genSeries(5000, 7, func(x float64, _ *rand.Rand) float64 { return 2 * x })
	cfg := DefaultMICConfig()
	cfg.MaxSamples = 200
	mic, err := MICWithConfig(xs, ys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mic < 0.85 {
		t.Errorf("subsampled MIC(linear) = %.3f, want high", mic)
	}
}

func TestMICDiscreteFeature(t *testing.T) {
	// Features like Nd take few distinct values; MIC must handle heavy
	// ties without panicking and detect the dependence.
	rng := rand.New(rand.NewSource(8))
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(rng.Intn(4))
		ys[i] = xs[i]*10 + rng.NormFloat64()
	}
	mic, err := MIC(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if mic < 0.5 {
		t.Errorf("MIC(discrete strong dep) = %.3f, want >= 0.5", mic)
	}
}

func TestEquipartitionKeepsTiesTogether(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 2, 3, 3, 3}
	assign, used := equipartition(vals, 3)
	if used < 2 || used > 3 {
		t.Fatalf("used %d bins", used)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] && assign[i] != assign[i-1] {
			t.Fatalf("tie split at %d: %v", i, assign)
		}
	}
	// Assignments must be non-decreasing over sorted input.
	for i := 1; i < len(assign); i++ {
		if assign[i] < assign[i-1] {
			t.Fatalf("assignment not monotone: %v", assign)
		}
	}
}

func TestMergeClumpsEndsAtN(t *testing.T) {
	end := []int{2, 5, 6, 9, 14, 20}
	out := mergeClumps(end, 3)
	if len(out) == 0 || out[len(out)-1] != 20 {
		t.Fatalf("merged clumps %v must end at 20", out)
	}
	if len(out) > 3+1 {
		t.Fatalf("too many clumps after merge: %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("non-increasing boundaries: %v", out)
		}
	}
}
