package testbed

import (
	"math"
	"testing"

	"repro/internal/simulate"
)

func TestMeasureEdgeMinRule(t *testing.T) {
	row, err := MeasureEdge("ANL", "BNL")
	if err != nil {
		t.Fatal(err)
	}
	if !row.Consistent() {
		t.Errorf("Equation 1 violated: R=%.3f min=%.3f", row.Rmax, row.Min())
	}
	// Magnitudes comparable to Table 1: everything in the 6–10 Gb/s band.
	for name, v := range map[string]float64{
		"Rmax": row.Rmax, "DWmax": row.DWmax, "DRmax": row.DRmax, "MMmax": row.MMmax,
	} {
		if v < 5 || v > 10.5 {
			t.Errorf("%s = %.2f Gb/s outside the testbed band", name, v)
		}
	}
}

func TestMeasureAllEdges(t *testing.T) {
	rows, err := MeasureAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12 ordered pairs", len(rows))
	}
	for _, r := range rows {
		if !r.Consistent() {
			t.Errorf("%s->%s violates the min rule: R=%.3f min=%.3f", r.From, r.To, r.Rmax, r.Min())
		}
		// End-to-end is always bounded by (and close to) the disk write
		// peak on this hardware profile.
		if r.Rmax > r.DWmax {
			t.Errorf("%s->%s: Rmax %.3f exceeds DWmax %.3f", r.From, r.To, r.Rmax, r.DWmax)
		}
	}
}

func TestIntercontinentalMMLower(t *testing.T) {
	rows, err := MeasureAll()
	if err != nil {
		t.Fatal(err)
	}
	var domestic, transatlantic float64
	for _, r := range rows {
		switch {
		case r.From == "ANL" && r.To == "BNL":
			domestic = r.MMmax
		case r.From == "ANL" && r.To == "CERN":
			transatlantic = r.MMmax
		}
	}
	if transatlantic >= domestic {
		t.Errorf("transatlantic MM %.3f should trail domestic %.3f", transatlantic, domestic)
	}
}

func TestRowMinAndMeasurements(t *testing.T) {
	r := Row{Rmax: 5, DWmax: 7, DRmax: 6, MMmax: 8}
	if r.Min() != 6 {
		t.Errorf("Min = %g, want 6", r.Min())
	}
	m := r.Measurements()
	bound, who, err := m.Bound()
	if err != nil {
		t.Fatal(err)
	}
	if bound != 6 || who.String() != "disk read" {
		t.Errorf("bound %g by %s", bound, who)
	}
}

func TestNewWorldControlled(t *testing.T) {
	w := NewWorld()
	if len(w.Endpoints) != len(Sites) {
		t.Fatalf("%d endpoints, want %d", len(w.Endpoints), len(Sites))
	}
	if w.FaultBaseHazard != 0 {
		t.Error("testbed must not inject faults")
	}
	for _, ep := range w.Endpoints {
		if ep.Bg.MaxFrac != 0 {
			t.Errorf("endpoint %s has background load in a controlled testbed", ep.ID)
		}
	}
}

func TestMeasureDeterministic(t *testing.T) {
	r1, err := MeasureEdge("LBL", "CERN")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MeasureEdge("LBL", "CERN")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("repeated measurement differs: %+v vs %+v", r1, r2)
	}
}

func TestLoadSweepSpecsValid(t *testing.T) {
	specs := LoadSweep("ANL", "BNL", 50, 3)
	if len(specs) < 50 {
		t.Fatalf("sweep produced %d specs, want >= 50 subjects", len(specs))
	}
	w := NewWorld()
	eng := simulate.NewEngine(w, 3)
	eng.Submit(specs...)
	l, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != len(specs) {
		t.Errorf("ran %d of %d sweep transfers", len(l.Records), len(specs))
	}
}

func TestLoadSweepProducesLoadVariation(t *testing.T) {
	w := NewWorld()
	eng := simulate.NewEngine(w, 5)
	eng.Submit(LoadSweep("ANL", "BNL", 80, 5)...)
	l, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Subject transfers must span a range of rates (competition varies).
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range l.Records {
		r := &l.Records[i]
		if r.Src == EndpointID("ANL") && r.Dst == EndpointID("BNL") {
			rate := r.Rate()
			lo = math.Min(lo, rate)
			hi = math.Max(hi, rate)
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("sweep rates span only %.2fx (%.0f..%.0f); need visible load effects", hi/lo, lo, hi)
	}
}

func TestEndpointID(t *testing.T) {
	if EndpointID("ANL") != "ANL-tb" {
		t.Error("EndpointID wrong")
	}
}
