// Package testbed reproduces the controlled ESnet-testbed study of §3.1:
// identical data transfer nodes at ANL, BNL, LBL, and CERN, each with a
// 10 Gb/s network link and a high-speed storage system, measured in four
// modes per edge —
//
//	DR  disk → /dev/null on the source DTN (local; peak disk read)
//	DW  /dev/zero → disk on the destination DTN (local; peak disk write)
//	MM  /dev/zero → /dev/null across the network (peak memory-to-memory)
//	R   disk → disk end-to-end
//
// with at least five repetitions each, keeping the maximum. Table 1 reports
// the results in Gb/s and verifies Equation 1's min rule on every edge.
package testbed

import (
	"fmt"
	"math/rand"

	"repro/internal/analytical"
	"repro/internal/geo"
	"repro/internal/logs"
	"repro/internal/simulate"
)

// Sites are the four testbed locations, in the row order of Table 1.
var Sites = []string{"ANL", "BNL", "CERN", "LBL"}

// Measurement settings: the testbed drives transfers hard enough to reach
// subsystem peaks.
const (
	measConc  = 8
	measPar   = 8
	measBytes = 100e9 // 100 GB per measurement transfer
	measFiles = 64
	measReps  = 5
)

// NewWorld builds the calibrated testbed world: identical DTNs, no hidden
// background load, no faults (the testbed is a controlled environment).
func NewWorld() *simulate.World {
	var eps []*simulate.Endpoint
	for i, name := range Sites {
		site, ok := geo.FindSite(name)
		if !ok {
			panic(fmt.Sprintf("testbed: site %q missing from catalogue", name))
		}
		// The testbed hardware is nominally identical, but real storage
		// systems calibrate a few percent apart (compare Table 1's rows);
		// a small deterministic per-site offset models that.
		jitter := 1 + 0.03*float64(i%3-1)
		eps = append(eps, &simulate.Endpoint{
			ID:              name + "-tb",
			Site:            site,
			Type:            logs.GCS,
			DiskReadMBps:    1163 * jitter, // ≈9.30 Gb/s
			DiskWriteMBps:   980 * jitter,  // ≈7.84 Gb/s
			NICMBps:         1250,          // 10 Gb/s
			PerProcDiskMBps: 150,
			CPUKnee:         60,
			CPUSteep:        2,
		})
	}
	w := simulate.NewWorld(eps)
	w.WANIntraMBps = 1190 // 9.52 Gb/s usable on domestic paths
	w.WANInterMBps = 1120 // 8.96 Gb/s usable transatlantic
	w.TCPWindowMB = 3     // testbed DTNs run tuned TCP stacks
	w.E2EEfficiency = 0.95
	w.FaultBaseHazard = 0
	return w
}

// EndpointID returns the testbed endpoint ID for a site name.
func EndpointID(site string) string { return site + "-tb" }

// Row is one Table 1 row: the four measured peaks for an edge, in Gb/s.
type Row struct {
	From, To string
	Rmax     float64
	DWmax    float64
	DRmax    float64
	MMmax    float64
}

// Min returns the smallest of DWmax, DRmax, MMmax — the Equation 1 bound.
func (r Row) Min() float64 {
	m := r.DWmax
	if r.DRmax < m {
		m = r.DRmax
	}
	if r.MMmax < m {
		m = r.MMmax
	}
	return m
}

// Consistent reports whether the row satisfies Equation 1 (Rmax ≤ bound,
// with a 1% numerical tolerance).
func (r Row) Consistent() bool { return r.Rmax <= r.Min()*1.01 }

// Measurements converts the row into the analytical package's input form.
func (r Row) Measurements() analytical.Measurements {
	return analytical.Measurements{DRmax: r.DRmax, MMmax: r.MMmax, DWmax: r.DWmax}
}

// MeasureAll runs the full Table 1 campaign: every ordered site pair,
// four modes, measReps repetitions, maximum kept. Results are in Gb/s.
func MeasureAll() ([]Row, error) {
	var rows []Row
	for _, from := range Sites {
		for _, to := range Sites {
			if from == to {
				continue
			}
			row, err := MeasureEdge(from, to)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MeasureEdge measures one edge in all four modes.
func MeasureEdge(from, to string) (Row, error) {
	row := Row{From: from, To: to}
	var err error
	// R: disk to disk end-to-end.
	if row.Rmax, err = measure(from, to, false, false, false); err != nil {
		return row, err
	}
	// DW: /dev/zero → disk, measured at the destination.
	if row.DWmax, err = measure(to, to, true, false, true); err != nil {
		return row, err
	}
	// DR: disk → /dev/null, measured at the source.
	if row.DRmax, err = measure(from, from, false, true, true); err != nil {
		return row, err
	}
	// MM: /dev/zero → /dev/null across the network.
	if row.MMmax, err = measure(from, to, true, true, false); err != nil {
		return row, err
	}
	return row, nil
}

// measure runs measReps identical transfers back to back and returns the
// highest observed rate in Gb/s.
func measure(from, to string, skipSrcDisk, skipDstDisk, loopback bool) (float64, error) {
	w := NewWorld()
	eng := simulate.NewEngine(w, 7)
	var start float64
	for rep := 0; rep < measReps; rep++ {
		eng.Submit(simulate.TransferSpec{
			Src:         EndpointID(from),
			Dst:         EndpointID(to),
			Start:       start,
			Bytes:       measBytes,
			Files:       measFiles,
			Conc:        measConc,
			Par:         measPar,
			SkipSrcDisk: skipSrcDisk,
			SkipDstDisk: skipDstDisk,
			SkipNetwork: loopback,
		})
		start += 1200 // well separated: each rep runs alone
	}
	l, err := eng.Run()
	if err != nil {
		return 0, err
	}
	best := 0.0
	for i := range l.Records {
		if r := l.Records[i].Rate(); r > best {
			best = r
		}
	}
	return mbpsToGbps(best), nil
}

// mbpsToGbps converts MB/s (10^6 bytes) to Gb/s (10^9 bits).
func mbpsToGbps(mbps float64) float64 { return mbps * 8 / 1000 }

// LoadSweep reproduces the Figure 3 experiment on a testbed edge: repeated
// disk-to-disk transfers while a varying number of competing transfers run
// at the same endpoints, yielding (relative external load, rate) points.
// The returned specs are ready to run through an engine; the caller
// engineers features from the resulting log to obtain relative loads.
func LoadSweep(from, to string, n int, seed int64) []simulate.TransferSpec {
	rng := rand.New(rand.NewSource(seed))
	var specs []simulate.TransferSpec
	var t float64
	others := otherSites(from, to)
	for i := 0; i < n; i++ {
		// Subject transfer.
		specs = append(specs, simulate.TransferSpec{
			Src: EndpointID(from), Dst: EndpointID(to),
			Start: t, Bytes: 30e9, Files: 32, Dirs: 2, Conc: measConc, Par: measPar,
		})
		// 0..4 competitors sharing the source (outgoing) and destination
		// (incoming) endpoints, overlapping the subject.
		k := rng.Intn(5)
		for j := 0; j < k; j++ {
			osite := others[rng.Intn(len(others))]
			if rng.Intn(2) == 0 {
				specs = append(specs, simulate.TransferSpec{
					Src: EndpointID(from), Dst: EndpointID(osite),
					Start: t + rng.Float64()*20, Bytes: 20e9 + rng.Float64()*30e9,
					Files: 16, Dirs: 1, Conc: measConc, Par: measPar,
				})
			} else {
				specs = append(specs, simulate.TransferSpec{
					Src: EndpointID(osite), Dst: EndpointID(to),
					Start: t + rng.Float64()*20, Bytes: 20e9 + rng.Float64()*30e9,
					Files: 16, Dirs: 1, Conc: measConc, Par: measPar,
				})
			}
		}
		t += 400 + rng.Float64()*200
	}
	return specs
}

func otherSites(a, b string) []string {
	var out []string
	for _, s := range Sites {
		if s != a && s != b {
			out = append(out, s)
		}
	}
	return out
}
