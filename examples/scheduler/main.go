// Scheduler: use transfer-rate predictions for distributed workflow data
// placement — the §1 use case "our predictions can be used for distributed
// workflow scheduling and optimization".
//
// A workflow needs a dataset staged to a compute site. Several replicas
// exist at different source endpoints. For each candidate source edge, a
// model trained on that edge's history predicts the achievable rate under
// current load; the scheduler stages from the fastest predicted source.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	pl, err := repro.NewPipeline(repro.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	edges := pl.StudyEdges()
	if len(edges) < 2 {
		log.Fatal("need at least two candidate edges")
	}

	// The dataset to stage: 120 GB in 1,500 files.
	plan := repro.PlannedTransfer{
		Bytes: 120e9, Files: 1500, Dirs: 40, Conc: 4, Par: 4,
	}

	// Candidate replicas: every study edge acts as a candidate source
	// route (in a real deployment these would share a destination; the
	// simulated study set stands in for the candidate list).
	type candidate struct {
		edge     repro.EdgeKey
		rate     float64
		duration float64
	}
	var candidates []candidate
	for _, ed := range edges {
		pred, err := repro.TrainEdgePredictor(pl, ed.Edge)
		if err != nil {
			log.Fatal(err)
		}
		// Estimate current competing load from the most recent transfer
		// on the edge: its K/S/G features describe the conditions now.
		recent := pl.VectorsAt(ed.All[len(ed.All)-1:])[0]
		plan.Ksout, plan.Ksin = recent.Ksout, recent.Ksin
		plan.Kdin, plan.Kdout = recent.Kdin, recent.Kdout
		plan.Ssout, plan.Ssin = recent.Ssout, recent.Ssin
		plan.Sdin, plan.Sdout = recent.Sdin, recent.Sdout
		plan.Gsrc, plan.Gdst = recent.Gsrc, recent.Gdst

		rate, err := pred.Predict(plan)
		if err != nil {
			log.Fatal(err)
		}
		dur, err := pred.PredictDuration(plan)
		if err != nil {
			dur = 0
		}
		candidates = append(candidates, candidate{edge: ed.Edge, rate: rate, duration: dur})
	}

	sort.Slice(candidates, func(i, j int) bool { return candidates[i].rate > candidates[j].rate })

	fmt.Println("staging plan for 120 GB dataset (best predicted route first):")
	for i, c := range candidates {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Printf(" %s %-30s predicted %7.1f MB/s  ≈ %6.0f s\n", marker, c.edge, c.rate, c.duration)
	}
	fmt.Printf("\nscheduler decision: stage via %s\n", candidates[0].edge)
}
