// Bottleneck: explain why an edge performs the way it does, combining the
// paper's two explanatory tools — the §3 analytical bound (which subsystem
// caps the edge) and the §5 model's feature importances (which competing
// loads move the rate within that cap).
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/testbed"
)

func main() {
	// Part 1: the analytical bound on a controlled testbed edge.
	fmt.Println("== analytical view (ESnet-style testbed) ==")
	row, err := testbed.MeasureEdge("ANL", "CERN")
	if err != nil {
		log.Fatal(err)
	}
	bound, which, err := repro.AnalyticalBound(row.Measurements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ANL->CERN: DR=%.2f MM=%.2f DW=%.2f Gb/s\n", row.DRmax, row.MMmax, row.DWmax)
	fmt.Printf("Equation 1 bound: %.2f Gb/s, limited by %s\n", bound, which)
	fmt.Printf("measured end-to-end Rmax: %.2f Gb/s (consistent: %v)\n\n", row.Rmax, row.Consistent())

	// Part 2: data-driven explanation on a production-like edge.
	fmt.Println("== data-driven view (busiest simulated edge) ==")
	pl, err := repro.NewPipeline(repro.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	edges := pl.StudyEdges()
	if len(edges) == 0 {
		log.Fatal("no study edges")
	}
	res, err := pl.EvaluateEdge(edges[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge %s: nonlinear model MdAPE %.2f%% on held-out transfers\n", res.Edge, res.XGBMdAPE)

	type imp struct {
		name string
		val  float64
	}
	var imps []imp
	for name, v := range res.XGBImport {
		imps = append(imps, imp{name, v})
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].val > imps[j].val })
	fmt.Println("what moves the rate (gain importance):")
	for i, e := range imps {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-8s %5.1f%%  %s\n", e.name, e.val*100, describe(e.name))
	}
	if len(res.Eliminated) > 0 {
		fmt.Printf("eliminated for low variance: %v (edge has habitual settings)\n", res.Eliminated)
	}
	_ = core.LowVarianceMin
}

// describe translates a feature name into the paper's vocabulary.
func describe(name string) string {
	switch name {
	case "Ksout":
		return "competing outgoing traffic at the source"
	case "Ksin":
		return "competing incoming traffic at the source"
	case "Kdin":
		return "competing incoming traffic at the destination"
	case "Kdout":
		return "competing outgoing traffic at the destination"
	case "Ssout", "Ssin", "Sdin", "Sdout":
		return "competing TCP streams"
	case "Gsrc":
		return "GridFTP processes contending at the source"
	case "Gdst":
		return "GridFTP processes contending at the destination"
	case "Nb":
		return "transfer size (startup amortization)"
	case "Nf":
		return "file count (per-file overhead)"
	case "Nd":
		return "directory count (metadata contention)"
	case "Nflt":
		return "faults experienced"
	case "C":
		return "concurrency setting"
	case "P":
		return "parallelism setting"
	default:
		return ""
	}
}
