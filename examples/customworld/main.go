// Customworld: model YOUR deployment instead of the built-in synthetic
// fabric. A world is described in JSON (endpoints with disk/NIC/CPU
// capacities and background-load behaviour), transfers are submitted
// directly, and the resulting log feeds the same feature-engineering and
// modeling pipeline the paper uses.
//
// This example models a university lab pushing instrument data to a
// national facility while a backup job competes for the lab's disks, and
// asks: how much does the nightly backup cost us?
//
//	go run ./examples/customworld
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/simulate"
)

const worldJSON = `{
  "endpoints": [
    {"id": "lab-dtn", "site": "UChicago", "type": "GCS",
     "disk_read_mbps": 600, "disk_write_mbps": 450, "nic_mbps": 1250,
     "per_proc_disk_mbps": 140, "cpu_knee": 24, "max_active": 8},
    {"id": "facility-dtn", "site": "ANL", "type": "GCS",
     "disk_read_mbps": 1200, "disk_write_mbps": 900, "nic_mbps": 2500,
     "per_proc_disk_mbps": 220, "cpu_knee": 48, "max_active": 16},
    {"id": "backup-server", "site": "UChicago", "type": "GCS",
     "disk_read_mbps": 400, "disk_write_mbps": 350, "nic_mbps": 1250,
     "per_proc_disk_mbps": 120, "cpu_knee": 16, "max_active": 4}
  ],
  "tcp_window_mb": 2,
  "jitter_sigma": 0.01
}`

func main() {
	spec, err := simulate.ReadWorldSpec(strings.NewReader(worldJSON))
	if err != nil {
		log.Fatal(err)
	}
	world, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Science transfers: every 20 minutes, an instrument dataset
	// (25 GB in 500 files) moves lab → facility.
	eng := simulate.NewEngine(world, 7)
	const n = 200
	for i := 0; i < n; i++ {
		eng.Submit(simulate.TransferSpec{
			Src: "lab-dtn", Dst: "facility-dtn",
			Start: float64(i) * 1200,
			Bytes: 25e9, Files: 500, Dirs: 20, Conc: 4, Par: 4,
		})
	}
	// The competing backup: lab → backup server, hourly, big sequential
	// reads from the same lab disks; each run lasts several minutes and
	// lands on top of every third science transfer.
	for i := 0; i < n/3; i++ {
		eng.Submit(simulate.TransferSpec{
			Src: "lab-dtn", Dst: "backup-server",
			Start: float64(i) * 3600,
			Bytes: 150e9, Files: 40, Dirs: 4, Conc: 8, Par: 2,
		})
	}

	l, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Feed the log to the paper's pipeline and split science transfers
	// by whether the backup overlapped them.
	pl := repro.PipelineFromLog(l)
	var quiet, contested []float64
	for _, v := range pl.Vecs {
		r := &pl.Log.Records[v.RecordIdx]
		if r.Dst != "facility-dtn" {
			continue
		}
		if v.Ksout > 1 { // backup traffic leaving the lab during this transfer
			contested = append(contested, v.Rate)
		} else {
			quiet = append(quiet, v.Rate)
		}
	}
	fmt.Printf("science transfers: %d quiet, %d overlapping the backup\n", len(quiet), len(contested))
	fmt.Printf("mean rate without backup: %7.1f MB/s\n", mean(quiet))
	fmt.Printf("mean rate during backup:  %7.1f MB/s\n", mean(contested))
	if len(contested) > 0 && len(quiet) > 0 {
		fmt.Printf("the backup costs %.0f%% of transfer throughput while it runs\n",
			100*(1-mean(contested)/mean(quiet)))
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
