// Quickstart: simulate a small transfer fabric, train the paper's
// nonlinear model on the busiest edge, and predict a planned transfer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Simulate a reduced Globus-like fabric and engineer the §4 features.
	cfg := repro.SmallConfig()
	pl, err := repro.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d transfers over %d endpoints\n",
		len(pl.Log.Records), len(pl.Log.Endpoints))

	// Pick the busiest heavily used edge.
	edges := pl.StudyEdges()
	if len(edges) == 0 {
		log.Fatal("no heavily used edges; increase the workload")
	}
	busiest := edges[0]
	fmt.Printf("busiest edge: %s (%d transfers, Rmax %.1f MB/s)\n",
		busiest.Edge, len(busiest.All), busiest.Rmax)

	// Train the per-edge nonlinear model (the paper's best performer).
	pred, err := repro.TrainEdgePredictor(pl, busiest.Edge)
	if err != nil {
		log.Fatal(err)
	}

	// Predict a planned 50 GB, 200-file transfer under light load...
	plan := repro.PlannedTransfer{
		Bytes: 50e9, Files: 200, Dirs: 10, Conc: 4, Par: 4,
	}
	quiet, err := pred.Predict(plan)
	if err != nil {
		log.Fatal(err)
	}

	// ...and under heavy competing load at the destination.
	plan.Kdin = busiest.Rmax * 0.8
	plan.Sdin = 32
	plan.Gdst = 8
	busy, err := pred.Predict(plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("predicted rate, quiet destination: %8.1f MB/s\n", quiet)
	fmt.Printf("predicted rate, busy destination:  %8.1f MB/s\n", busy)
	if d, err := pred.PredictDuration(plan); err == nil {
		fmt.Printf("expected duration under load:      %8.1f s\n", d)
	}
}
