// Whatif: answer operational questions with a trained edge model — how
// does the expected rate of a planned transfer change with the competing
// load it will face, and with the shape of the dataset being moved?
// This is the paper's "our features can also be used for optimization and
// explanation" use case (§1).
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	pl, err := repro.NewPipeline(repro.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	edges := pl.StudyEdges()
	if len(edges) == 0 {
		log.Fatal("no study edges")
	}
	ed := edges[0]
	pred, err := repro.TrainEdgePredictor(pl, ed.Edge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge: %s (Rmax %.1f MB/s)\n\n", ed.Edge, ed.Rmax)

	// Characterize the edge's historical load levels: the quartiles of
	// the destination's competing incoming traffic.
	vecs := pl.VectorsAt(ed.All)
	var kdin, sdin, gdst []float64
	for i := range vecs {
		kdin = append(kdin, vecs[i].Kdin)
		sdin = append(sdin, vecs[i].Sdin)
		gdst = append(gdst, vecs[i].Gdst)
	}
	levels := []struct {
		name string
		pct  float64
	}{
		{"idle (p10)", 10},
		{"typical (p50)", 50},
		{"busy (p90)", 90},
		{"slammed (p99)", 99},
	}

	plan := repro.PlannedTransfer{Bytes: 30e9, Files: 500, Dirs: 20, Conc: 4, Par: 4}
	fmt.Println("what if the destination is...")
	for _, lv := range levels {
		k, _ := stats.Percentile(kdin, lv.pct)
		s, _ := stats.Percentile(sdin, lv.pct)
		g, _ := stats.Percentile(gdst, lv.pct)
		plan.Kdin, plan.Sdin, plan.Gdst = k, s, g
		rate, err := pred.Predict(plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s Kdin=%7.1f  ->  %7.1f MB/s\n", lv.name, k, rate)
	}

	// And how does dataset shape matter, at typical load?
	k, _ := stats.Percentile(kdin, 50)
	s, _ := stats.Percentile(sdin, 50)
	g, _ := stats.Percentile(gdst, 50)
	fmt.Println("\nwhat if the 30 GB dataset is packaged as...")
	for _, shape := range []struct {
		name  string
		files int
	}{
		{"1 tarball", 1},
		{"100 files", 100},
		{"10k files", 10000},
		{"100k files", 100000},
	} {
		p := repro.PlannedTransfer{
			Bytes: 30e9, Files: shape.files, Dirs: 1 + shape.files/50,
			Conc: 4, Par: 4, Kdin: k, Sdin: s, Gdst: g,
		}
		rate, err := pred.Predict(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s -> %7.1f MB/s\n", shape.name, rate)
	}
	fmt.Println("\n(models interpolate within the edge's history; shapes far outside it")
	fmt.Println(" fall back to the nearest observed behaviour, as tree models do)")
}
