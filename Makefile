GO ?= go

.PHONY: check build vet test race fuzz bench

# The full gate: what CI (and a careful human) runs before merging.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Component benchmarks, repeated for benchstat. Writes benchstat-compatible
# text plus parsed JSON under bench/BENCH_<git-sha>.{txt,json}; pass
# BENCH_LABEL / BENCH_PATTERN / BENCH_COUNT to override (see scripts/bench.sh).
bench:
	./scripts/bench.sh $(BENCH_LABEL)

# Short fuzz pass over the CSV ingestion round-trip properties.
fuzz:
	$(GO) test ./internal/logs -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s
