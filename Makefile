GO ?= go

EXAMPLES := $(wildcard examples/*)

.PHONY: check build vet test race fuzz bench examples coverage serve serve-smoke stream-smoke loadtest

# The full gate: what CI (and a careful human) runs before merging.
check: build vet test race examples

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Component benchmarks, repeated for benchstat. Writes benchstat-compatible
# text plus parsed JSON under bench/BENCH_<git-sha>.{txt,json}; pass
# BENCH_LABEL / BENCH_PATTERN / BENCH_COUNT to override (see scripts/bench.sh).
bench:
	./scripts/bench.sh $(BENCH_LABEL)

# Short fuzz passes: the CSV ingestion round-trip properties, the
# columnar container reader (truncated/corrupt/version-skewed inputs
# must fail closed, never panic or silently drop rows), the world-spec
# parser (malformed JSON / non-finite numbers must error, never panic),
# the engine-schedule differential fuzzer (optimized and sharded event
# cores must stay byte-identical to the reference core under
# adversarial deadline ties), and the serve daemon's request decoder
# (malformed bodies must 400, never panic), and the log tailer (torn
# appends, rotation, truncation, and garbage mid-stream must never
# panic or emit a malformed record).
fuzz:
	$(GO) test ./internal/logs -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/logs/colfmt -run '^$$' -fuzz FuzzReadColumnar -fuzztime 30s
	$(GO) test ./internal/simulate -run '^$$' -fuzz FuzzParseWorld -fuzztime 30s
	$(GO) test ./internal/simulate -run '^$$' -fuzz FuzzEngineSchedules -fuzztime 30s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzPredictRequest -fuzztime 30s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzCodecDifferential -fuzztime 30s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzBatchRequest -fuzztime 30s
	$(GO) test ./internal/stream -run '^$$' -fuzz FuzzTail -fuzztime 30s

# Train a serving registry on the small workload and run the prediction
# daemon on it (foreground; SIGHUP reloads, SIGTERM drains). Override
# SERVE_ADDR / SERVE_REGISTRY to taste.
SERVE_ADDR ?= 127.0.0.1:8723
SERVE_REGISTRY ?= /tmp/wanperf-registry.json
serve:
	$(GO) run ./cmd/wanperf registry -small -out $(SERVE_REGISTRY)
	$(GO) run ./cmd/wanperf serve -registry $(SERVE_REGISTRY) -addr $(SERVE_ADDR)

# End-to-end daemon lifecycle smoke: build, train, boot, predict, reject
# a corrupt reload, hot-reload on SIGHUP, drain on SIGTERM.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end online refresh smoke: tail a growing log with `wanperf
# stream`, bootstrap + gate-passed promotion hot-reload a live daemon,
# and a drifted window is rejected without moving the served generation.
stream-smoke:
	./scripts/stream-smoke.sh

# Concurrent load generation with latency percentiles against a running
# daemon (start one with `make serve`).
loadtest:
	./scripts/loadtest.sh

# Vet and compile every example program. They are plain main packages, so
# `go build ./...` already type-checks them; this target keeps them honest
# one by one and gives a readable per-example failure in CI.
examples:
	@for dir in $(EXAMPLES); do \
		echo "== $$dir"; \
		$(GO) vet ./$$dir/ || exit 1; \
		$(GO) build -o /dev/null ./$$dir/ || exit 1; \
	done

# Statement-coverage gate over the internal packages (see scripts/coverage.sh).
coverage:
	./scripts/coverage.sh
