GO ?= go

EXAMPLES := $(wildcard examples/*)

.PHONY: check build vet test race fuzz bench examples coverage

# The full gate: what CI (and a careful human) runs before merging.
check: build vet test race examples

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Component benchmarks, repeated for benchstat. Writes benchstat-compatible
# text plus parsed JSON under bench/BENCH_<git-sha>.{txt,json}; pass
# BENCH_LABEL / BENCH_PATTERN / BENCH_COUNT to override (see scripts/bench.sh).
bench:
	./scripts/bench.sh $(BENCH_LABEL)

# Short fuzz passes: the CSV ingestion round-trip properties, the
# world-spec parser (malformed JSON / non-finite numbers must error,
# never panic), and the engine-schedule differential fuzzer (optimized
# event core must stay byte-identical to the reference core under
# adversarial deadline ties).
fuzz:
	$(GO) test ./internal/logs -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/simulate -run '^$$' -fuzz FuzzParseWorld -fuzztime 30s
	$(GO) test ./internal/simulate -run '^$$' -fuzz FuzzEngineSchedules -fuzztime 30s

# Vet and compile every example program. They are plain main packages, so
# `go build ./...` already type-checks them; this target keeps them honest
# one by one and gives a readable per-example failure in CI.
examples:
	@for dir in $(EXAMPLES); do \
		echo "== $$dir"; \
		$(GO) vet ./$$dir/ || exit 1; \
		$(GO) build -o /dev/null ./$$dir/ || exit 1; \
	done

# Statement-coverage gate over the internal packages (see scripts/coverage.sh).
coverage:
	./scripts/coverage.sh
