GO ?= go

.PHONY: check build vet test race fuzz

# The full gate: what CI (and a careful human) runs before merging.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the CSV ingestion round-trip properties.
fuzz:
	$(GO) test ./internal/logs -run '^$$' -fuzz FuzzReadCSV -fuzztime 30s
