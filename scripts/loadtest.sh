#!/usr/bin/env bash
# loadtest.sh — concurrent load generator for the wanperf serve daemon,
# reporting status-code mix and latency percentiles.
#
# Usage: scripts/loadtest.sh [url] [clients] [requests-per-client]
#
#   url                  daemon base URL   (default http://127.0.0.1:8723)
#   clients              concurrent workers (default 8)
#   requests-per-client  requests each     (default 200)
#
# Environment:
#   LOADTEST_BODY   request JSON (default: a global-fallback prediction)
#   LOADTEST_BATCH  rows per request; 0 (default) drives POST /predict
#                   with singleton requests, N>0 drives POST
#                   /predict/batch with N-row NDJSON bodies
#
# Each worker POSTs in a tight loop recording curl's total time per
# request; the summary aggregates all workers: requests by status code,
# aggregate rows/s, and p50/p90/p99/max per-request (per-batch in batch
# mode) latency of the 200s. Exits 1 if any request returned a 5xx (the
# daemon's shed policy is 429-only) or if nothing succeeded.
set -eu

url="${1:-http://127.0.0.1:8723}"
clients="${2:-8}"
per="${3:-200}"
batch="${LOADTEST_BATCH:-0}"
body="${LOADTEST_BODY:-{\"src\":\"loadtest\",\"dst\":\"loadtest\",\"features\":{\"C\":4,\"P\":4,\"Nf\":100,\"Nb\":1e9}}}"

command -v curl >/dev/null || { echo "loadtest: curl not found" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# In batch mode each request body is the singleton body repeated as NDJSON
# lines, and every 200 counts LOADTEST_BATCH served rows.
endpoint="/predict"
rows_per_req=1
if [ "$batch" -gt 0 ] 2>/dev/null; then
    endpoint="/predict/batch"
    rows_per_req="$batch"
    : >"$tmp/body"
    for _ in $(seq 1 "$batch"); do printf '%s\n' "$body" >>"$tmp/body"; done
    bodyfile="$tmp/body"
fi

worker() {
    local out="$1" i
    for i in $(seq 1 "$per"); do
        if [ "$batch" -gt 0 ]; then
            curl -s -o /dev/null \
                -w '%{http_code} %{time_total}\n' \
                -X POST -H 'Content-Type: application/x-ndjson' \
                --data-binary "@$bodyfile" \
                "$url$endpoint" >>"$out" || echo "000 0" >>"$out"
        else
            curl -s -o /dev/null \
                -w '%{http_code} %{time_total}\n' \
                -X POST -H 'Content-Type: application/json' \
                --data "$body" \
                "$url$endpoint" >>"$out" || echo "000 0" >>"$out"
        fi
    done
}

echo "loadtest: $clients clients x $per requests ($rows_per_req rows/request) against $url$endpoint" >&2
start=$(date +%s.%N)
for c in $(seq 1 "$clients"); do
    worker "$tmp/w$c" &
done
wait
elapsed=$(date +%s.%N | awk -v s="$start" '{printf "%.3f", $1 - s}')

cat "$tmp"/w* | awk -v elapsed="$elapsed" -v rows="$rows_per_req" '
{
    code[$1]++
    total++
    if ($1 == "200") lat[n200++] = $2
    if ($1 >= 500) bad++
}
END {
    printf "requests: %d in %ss (%.1f req/s)\n", total, elapsed, total / elapsed
    for (c in code) printf "  status %s: %d\n", c, code[c]
    if (n200 > 0)
        printf "aggregate throughput: %.1f rows/s (%d served predictions)\n", \
            n200 * rows / elapsed, n200 * rows
    if (n200 > 0) {
        # insertion sort: n is small enough
        for (i = 1; i < n200; i++) {
            v = lat[i]
            for (j = i - 1; j >= 0 && lat[j] > v; j--) lat[j+1] = lat[j]
            lat[j+1] = v
        }
        # parenthesized: a bare `rows > 1` in a printf argument list is
        # an output redirection to awk, not a comparison
        printf "latency (200s%s): p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n", \
            (rows > 1 ? ", per batch" : ""), \
            lat[int(n200*0.50)]*1000, lat[int(n200*0.90)]*1000, \
            lat[int(n200*0.99)]*1000, lat[n200-1]*1000
    }
    if (bad > 0) { printf "FAIL: %d 5xx responses\n", bad; exit 1 }
    if (n200 == 0) { print "FAIL: no successful predictions"; exit 1 }
}'
