#!/usr/bin/env bash
# coverage.sh — run the internal packages under -coverprofile and fail if
# total statement coverage falls below the floor, so coverage regressions
# are caught in CI rather than discovered after they accumulate.
#
# Usage: scripts/coverage.sh
#
# Tunables (environment):
#   COVER_FLOOR    minimum total coverage percent   (default: 90.0)
#   COVER_PROFILE  profile output path              (default: coverage.out)
#
# The floor sits ~2 points under the measured baseline (92.2% at the time
# it was set): tight enough to flag a carelessly untested subsystem, loose
# enough that a small refactor doesn't ratchet-fail the build.
set -eu

cd "$(dirname "$0")/.."

floor="${COVER_FLOOR:-90.0}"
profile="${COVER_PROFILE:-coverage.out}"

go test -coverprofile="$profile" ./internal/...

total="$(go tool cover -func="$profile" | awk '/^total:/ { gsub("%", "", $NF); print $NF }')"
if [ -z "$total" ]; then
    echo "coverage.sh: could not extract total coverage from $profile" >&2
    exit 1
fi

echo "total coverage: ${total}% (floor: ${floor}%)"
awk -v total="$total" -v floor="$floor" 'BEGIN { exit !(total + 0 >= floor + 0) }' || {
    echo "coverage.sh: total coverage ${total}% is below the floor ${floor}%" >&2
    exit 1
}
