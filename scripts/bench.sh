#!/usr/bin/env bash
# bench.sh — run the component benchmarks and record the numbers as a
# tracked artifact, so the perf trajectory across PRs is reconstructable.
#
# Usage: scripts/bench.sh [label]
#
# The label defaults to the current git SHA (12 chars, "-dirty" appended
# when the tree has uncommitted changes). Two files are written under
# bench/:
#
#   BENCH_<label>.txt   raw `go test -bench` output, benchstat-compatible
#   BENCH_<label>.json  parsed {name, iterations, ns_per_op, ...} records
#
# Tunables (environment):
#   BENCH_PATTERN      benchmark regexp     (default: component benchmarks)
#   BENCH_COUNT        -count               (default: 5)
#   BENCH_TIME         -benchtime           (default: 1x)
#   BENCH_SHARD_COUNT  -count for the shard-scaling sweep (default: 3)
#   BENCH_XLARGE       set to 1 to append the paper-scale XLarge
#                      end-to-end run (>1M transfers; takes minutes)
set -eu

cd "$(dirname "$0")/.."

label="${1:-}"
if [ -z "$label" ]; then
    label="$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet HEAD 2>/dev/null; then
        label="${label}-dirty"
    fi
fi

pattern="${BENCH_PATTERN:-GBTTrain|GBTTrainHist|Fig11Headline|FeatureEngineering|LinregFit|SimulateSmall|Predict\$|PredictAll|MIC|EngineRun}"
count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-1x}"
shard_count="${BENCH_SHARD_COUNT:-3}"

mkdir -p bench
txt="bench/BENCH_${label}.txt"
json="bench/BENCH_${label}.json"

echo "running benchmarks matching '${pattern}' (count=${count}, benchtime=${benchtime})..." >&2
go test -run '^$' -bench "$pattern" -benchmem -count "$count" -benchtime "$benchtime" . | tee "$txt"

# Log I/O comparison: CSV vs columnar, read and write, over the same
# in-memory log. These are millisecond-scale, so they run many
# iterations per sample for stable per-op numbers.
echo "running log I/O comparison (CSV vs columnar)..." >&2
go test -run '^$' -bench 'LogRead|LogWrite' -benchmem -count 3 -benchtime 20x . | tee -a "$txt"

# Shard-scaling sweep: the clustered Large world at shards 1/2/4/Max
# (Max = max(GOMAXPROCS, cluster count)). Serial vs sharded on the SAME
# world is the engine-speedup headline, so it gets its own stage with a
# lower count (the serial leg alone runs ~10s per iteration).
echo "running shard-scaling sweep (count=${shard_count})..." >&2
go test -run '^$' -bench 'EngineShardLarge' -benchmem -count "$shard_count" -benchtime 1x . | tee -a "$txt"

# Paper-scale end to end: generate the XLarge world (>1M transfers),
# simulate sharded, columnar round trip, feature engineering from column
# views. One iteration; opt-in because it takes minutes.
if [ "${BENCH_XLARGE:-0}" = "1" ]; then
    echo "running paper-scale XLarge end to end (one iteration)..." >&2
    go test -run '^$' -bench 'PaperScaleXLarge' -benchmem -count 1 -benchtime 1x -timeout 60m . | tee -a "$txt"
fi

# Parse the benchstat-compatible text into JSON. Benchmark lines look like:
#   BenchmarkGBTTrain    	       2	 601234567 ns/op	 123456 B/op	   789 allocs/op
awk -v label="$label" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix if present
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"label\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", label, name, $2, ns)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
}
END { print "\n]" }
' "$txt" > "$json"

echo "wrote $txt and $json" >&2
