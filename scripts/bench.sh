#!/usr/bin/env bash
# bench.sh — run the component benchmarks and record the numbers as a
# tracked artifact, so the perf trajectory across PRs is reconstructable.
#
# Usage: scripts/bench.sh [label]
#
# The label defaults to the current git SHA (12 chars, "-dirty" appended
# when the tree has uncommitted changes). Two files are written under
# bench/:
#
#   BENCH_<label>.txt   raw `go test -bench` output, benchstat-compatible
#   BENCH_<label>.json  parsed {name, iterations, ns_per_op, ...} records
#
# Tunables (environment):
#   BENCH_PATTERN      benchmark regexp     (default: component benchmarks)
#   BENCH_COUNT        -count               (default: 5)
#   BENCH_TIME         -benchtime           (default: 1x)
#   BENCH_SHARD_COUNT  -count for the shard-scaling sweep (default: 3)
#   BENCH_SERVE_COUNT  -count for the serve/code-space stage (default: 3)
#   BENCH_SERVE_TIME   -benchtime for the serve/code-space stage (default: 1s)
#   BENCH_SERVE_CPUS   -cpu matrix for the serve stage (default: 1,4,8)
#   BENCH_XLARGE       set to 1 to append the paper-scale XLarge
#                      end-to-end run (>1M transfers; takes minutes)
set -eu

cd "$(dirname "$0")/.."

label="${1:-}"
if [ -z "$label" ]; then
    label="$(git rev-parse --short=12 HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet HEAD 2>/dev/null; then
        label="${label}-dirty"
    fi
fi

pattern="${BENCH_PATTERN:-GBTTrain|GBTTrainHist|Fig11Headline|FeatureEngineering|LinregFit|SimulateSmall|Predict\$|PredictAll|MIC|EngineRun}"
count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-1x}"
shard_count="${BENCH_SHARD_COUNT:-3}"
serve_count="${BENCH_SERVE_COUNT:-3}"
serve_time="${BENCH_SERVE_TIME:-1s}"
serve_cpus="${BENCH_SERVE_CPUS:-1,4,8}"

mkdir -p bench
txt="bench/BENCH_${label}.txt"
json="bench/BENCH_${label}.json"

echo "running benchmarks matching '${pattern}' (count=${count}, benchtime=${benchtime})..." >&2
go test -run '^$' -bench "$pattern" -benchmem -count "$count" -benchtime "$benchtime" . | tee "$txt"

# Log I/O comparison: CSV vs columnar, read and write, over the same
# in-memory log. These are millisecond-scale, so they run many
# iterations per sample for stable per-op numbers.
echo "running log I/O comparison (CSV vs columnar)..." >&2
go test -run '^$' -bench 'LogRead|LogWrite' -benchmem -count 3 -benchtime 20x . | tee -a "$txt"

# Shard-scaling sweep: the clustered Large world at shards 1/2/4/Max
# (Max = max(GOMAXPROCS, cluster count)). Serial vs sharded on the SAME
# world is the engine-speedup headline, so it gets its own stage with a
# lower count (the serial leg alone runs ~10s per iteration).
echo "running shard-scaling sweep (count=${shard_count})..." >&2
go test -run '^$' -bench 'EngineShardLarge' -benchmem -count "$shard_count" -benchtime 1x . | tee -a "$txt"

# Serve / code-space inference stage: the quantized batch-inference
# kernel, its float-path twin, admission quantization, and end-to-end
# daemon throughput, across a -cpu matrix. The batcher count follows
# GOMAXPROCS, so the matrix shows multi-batcher scaling; the parser
# below keeps the cpu width as its own field so runs don't merge.
echo "running serve/code-space stage (-cpu ${serve_cpus}, count=${serve_count})..." >&2
go test -run '^$' -bench 'ServeBatchInference|ServePredict|QuantizeRow' \
    -benchmem -count "$serve_count" -benchtime "$serve_time" -cpu "$serve_cpus" . | tee -a "$txt"

# Aggregate serving throughput: best singleton and batch front-door
# rows/s across the cpu matrix — the one-line numbers for
# EXPERIMENTS.md. (-cpu 1 runs have no -N name suffix.)
awk '/^BenchmarkServePredict(-[0-9]+)? / {
    for (i = 2; i <= NF; i++) if ($i == "rows/s" && $(i-1)+0 > best) best = $(i-1)+0
}
/^BenchmarkServePredictBatch(-[0-9]+)? / {
    for (i = 2; i <= NF; i++) if ($i == "rows/s" && $(i-1)+0 > bbest) bbest = $(i-1)+0
} END {
    if (best)  printf("aggregate serving throughput: %.0f rows/s (best ServePredict across -cpu matrix)\n", best)
    if (bbest) printf("aggregate batch throughput: %.0f rows/s (best ServePredictBatch across -cpu matrix)\n", bbest)
}' "$txt" | tee -a "$txt"

# Bounds-check-elimination audit for the inference hot path, recorded
# alongside the numbers it explains. The checks that remain are the
# data-indexed gathers (tree cursors, per-feature code bytes, leaf
# weights) whose indices come from model data the prover cannot see;
# block bounds and accumulator checks are hoisted in walkBlock.
echo "recording check_bce audit for the hot path..." >&2
{
    echo ""
    echo "# go build -gcflags=-d=ssa/check_bce audit (quantized inference hot path)"
    go build -gcflags='-d=ssa/check_bce' ./internal/ml/gbt/ ./internal/ml/dataset/ 2>&1 \
        | grep -E 'cforest\.go|quantize\.go' | sed 's/^/# /' || true
} >> "$txt"

# Paper-scale end to end: generate the XLarge world (>1M transfers),
# simulate sharded, columnar round trip, feature engineering from column
# views. One iteration; opt-in because it takes minutes.
if [ "${BENCH_XLARGE:-0}" = "1" ]; then
    echo "running paper-scale XLarge end to end (one iteration)..." >&2
    go test -run '^$' -bench 'PaperScaleXLarge' -benchmem -count 1 -benchtime 1x -timeout 60m . | tee -a "$txt"
fi

# Parse the benchstat-compatible text into JSON. Benchmark lines look like:
#   BenchmarkGBTTrain    	       2	 601234567 ns/op	 123456 B/op	   789 allocs/op
# The -N name suffix is the GOMAXPROCS the run executed under; it becomes
# its own "cpu" field rather than being discarded, so -cpu matrix runs of
# the same benchmark stay distinguishable in the JSON.
awk -v label="$label" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    cpu = ""
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    ns = ""; bytes = ""; allocs = ""; nsrow = ""; rowss = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
        if ($i == "ns/row")    nsrow = $(i-1)
        if ($i == "rows/s")    rowss = $(i-1)
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"label\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", label, name, $2, ns)
    if (cpu != "")    printf(", \"cpu\": %s", cpu)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    if (nsrow != "")  printf(", \"ns_per_row\": %s", nsrow)
    if (rowss != "")  printf(", \"rows_per_s\": %s", rowss)
    printf("}")
}
END { print "\n]" }
' "$txt" > "$json"

echo "wrote $txt and $json" >&2
