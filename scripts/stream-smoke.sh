#!/usr/bin/env bash
# stream-smoke.sh — end-to-end smoke test of the online refresh loop,
# suitable for CI: build the binary, simulate a transfer log, and tail it
# with `wanperf stream` while a `wanperf serve` daemon watches the
# registry the stream promotes into:
#
#   grow the log → bootstrap promotion writes the registry
#   → daemon boots on it and serves /predict
#   → a second same-distribution window passes the drift gate, promotes,
#     and the daemon hot-reloads to generation 2 without dropping requests
#   → a drifted window (rates ×100) is REJECTED; the registry file and
#     the serving generation stay put
#   → SIGTERM stops the stream cleanly, exit 0
#
# Usage: scripts/stream-smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."
port="${1:-18737}"
addr="127.0.0.1:$port"
url="http://$addr"

tmp="$(mktemp -d)"
stream_pid=""
serve_pid=""
cleanup() {
    [ -n "$stream_pid" ] && kill -9 "$stream_pid" 2>/dev/null || true
    [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "stream-smoke: FAIL: $*" >&2; exit 1; }
step() { echo "stream-smoke: $*" >&2; }

# wait_grep FILE PATTERN DESC — poll up to 30s for PATTERN in FILE.
wait_grep() {
    for _ in $(seq 1 150); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        sleep 0.2
    done
    cat "$1" >&2 || true
    fail "timed out waiting for $3"
}

step "building wanperf"
go build -o "$tmp/wanperf" ./cmd/wanperf

step "simulating source log (small workload)"
"$tmp/wanperf" simulate -small -format csv -out "$tmp/full.csv" 2>/dev/null
rows=$(($(wc -l <"$tmp/full.csv") - 1))
[ "$rows" -ge 200 ] || fail "simulated log too small ($rows rows)"

log="$tmp/transfers.csv"
reg="$tmp/registry.json"

step "starting stream (window 200, refresh every 200)"
"$tmp/wanperf" stream -in "$log" -registry "$reg" \
    -window 200 -refresh-every 200 -min-train 100 \
    -poll 100ms -gbt-bins 64 >"$tmp/stream.out" 2>"$tmp/stream.err" &
stream_pid=$!

# Window 1: the first 200 records. The bootstrap must write the registry.
head -n 201 "$tmp/full.csv" >"$log"
wait_grep "$tmp/stream.out" "refresh 1: bootstrap" "bootstrap promotion"
[ -s "$reg" ] || fail "bootstrap did not write the registry"
step "bootstrap promoted"

step "starting daemon on $addr (watching $reg)"
"$tmp/wanperf" serve -registry "$reg" -addr "$addr" \
    -drain-timeout 5s -watch 200ms >"$tmp/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    curl -sf "$url/healthz" >/dev/null 2>&1 && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; fail "daemon died on startup"; }
    sleep 0.2
done
curl -sf "$url/healthz" >/dev/null || fail "healthz never came up"

predict() { curl -s -X POST -H 'Content-Type: application/json' --data "$1" "$url/predict"; }
body='{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100,"Nb":5e9}}'

resp="$(predict "$body")"
echo "$resp" | grep -q '"generation":1' || fail "boot generation not 1: $resp"
step "serving generation 1"

# Window 2: the same 200 records shifted far forward in time with fresh
# ids — an identical workload distribution, so the warm candidate must
# pass the drift gate and promote.
awk -F, 'BEGIN { CONVFMT = OFMT = "%.17g" }
    NR>1 { $1+=1000000; $4+=50000000; $5+=50000000; print }' OFS=, \
    "$tmp/full.csv" | head -n 200 >>"$log"
wait_grep "$tmp/stream.out" "refresh 2: promote" "gate-passed promotion"
step "refresh 2 promoted"

# The daemon's watcher must adopt generation 2 while still serving.
for _ in $(seq 1 50); do
    resp="$(predict "$body")"
    echo "$resp" | grep -q '"generation":2' && break
    echo "$resp" | grep -q '"rate_mbps"' || fail "prediction dropped during reload: $resp"
    sleep 0.2
done
echo "$resp" | grep -q '"generation":2' || fail "daemon never adopted generation 2: $resp"
step "hot-reloaded to generation 2"

reg_stat_before="$(stat -c '%Y %s' "$reg" 2>/dev/null || stat -f '%m %z' "$reg")"

# Window 3: the same records again, but with bytes ×100 — rates two
# orders of magnitude off. The gate must reject the candidate.
awk -F, 'BEGIN { CONVFMT = OFMT = "%.17g" }
    NR>1 { $1+=2000000; $4+=100000000; $5+=100000000; $6*=100; print }' OFS=, \
    "$tmp/full.csv" | head -n 200 >>"$log"
wait_grep "$tmp/stream.out" "refresh 3: REJECTED" "drift rejection"
step "drifted window rejected"

reg_stat_after="$(stat -c '%Y %s' "$reg" 2>/dev/null || stat -f '%m %z' "$reg")"
[ "$reg_stat_before" = "$reg_stat_after" ] || fail "rejected candidate rewrote the registry"

resp="$(predict "$body")"
echo "$resp" | grep -q '"generation":2' || fail "generation moved after rejection: $resp"
step "prior generation still serving"

step "stopping stream (SIGTERM)"
kill -TERM "$stream_pid"
for _ in $(seq 1 50); do
    kill -0 "$stream_pid" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$stream_pid" 2>/dev/null; then
    fail "stream did not exit on SIGTERM"
fi
wait "$stream_pid" && rc=0 || rc=$?
[ "$rc" -eq 0 ] || { cat "$tmp/stream.err" >&2; fail "stream exited with $rc"; }
stream_pid=""

step "PASS"
