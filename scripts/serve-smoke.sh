#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke test of the wanperf serve daemon,
# suitable for CI: build the binary, train a registry on the small
# workload, boot the daemon, and walk the whole lifecycle:
#
#   /healthz → /readyz → /predict (edge + global + bad request)
#   → /predict/batch (NDJSON rows, rate parity with the singleton path,
#     whole-batch 400 on a bad line, whole-batch 429 + Retry-After under
#     overload, batch metrics on /metrics)
#   → corrupt-registry reload is rejected, last good registry keeps serving
#   → SIGHUP hot reload promotes a new generation
#   → SIGTERM drains gracefully within the deadline, exit 0
#
# Usage: scripts/serve-smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."
port="${1:-18729}"
addr="127.0.0.1:$port"
url="http://$addr"

tmp="$(mktemp -d)"
pid=""
pid2=""
pid3=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill -9 "$pid2" 2>/dev/null || true
    [ -n "$pid3" ] && kill -9 "$pid3" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }
step() { echo "serve-smoke: $*" >&2; }

step "building wanperf"
go build -o "$tmp/wanperf" ./cmd/wanperf

step "training registry (small workload)"
"$tmp/wanperf" registry -small -out "$tmp/registry.json" 2>/dev/null
[ -s "$tmp/registry.json" ] || fail "registry not written"

step "starting daemon on $addr"
"$tmp/wanperf" serve -registry "$tmp/registry.json" -addr "$addr" \
    -drain-timeout 5s -watch -1s >"$tmp/serve.log" 2>&1 &
pid=$!

for i in $(seq 1 50); do
    curl -sf "$url/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; fail "daemon died on startup"; }
    sleep 0.2
done
curl -sf "$url/healthz" >/dev/null || fail "healthz never came up"
step "healthz ok"

[ "$(curl -s -o /dev/null -w '%{http_code}' "$url/readyz")" = 200 ] || fail "readyz not ready"
step "readyz ok"

predict() { curl -s -X POST -H 'Content-Type: application/json' --data "$1" "$url/predict"; }

resp="$(predict '{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100}}')"
echo "$resp" | grep -q '"model":"global"' || fail "global prediction failed: $resp"
echo "$resp" | grep -q '"generation":1' || fail "unexpected boot generation: $resp"
step "predict ok ($resp)"

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST --data '{"features":{}}' "$url/predict")"
[ "$code" = 400 ] || fail "empty-features request returned $code, want 400"
step "bad request rejected with 400"

# Batch front door: NDJSON in, one response line per input line, in
# input order, with the rate byte-identical to the singleton path.
step "batch predict: 3-row NDJSON (with a blank line) through /predict/batch"
bbody='{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100}}

{"src":"smoke","dst":"smoke","features":{"C":8,"P":2,"Nf":7,"Nb":1e8}}
{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100}}'
bresp="$(curl -s -X POST -H 'Content-Type: application/x-ndjson' --data-binary "$bbody" "$url/predict/batch")"
[ "$(printf '%s\n' "$bresp" | wc -l)" = 3 ] || fail "batch answered $(printf '%s\n' "$bresp" | wc -l) lines, want 3: $bresp"
if printf '%s\n' "$bresp" | grep -qv '"rate":'; then fail "batch line missing rate: $bresp"; fi
srate="$(curl -s -X POST -H 'Content-Type: application/json' \
    --data '{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100}}' "$url/predict" | sed 's/.*"rate"://; s/[,}].*//')"
brate="$(printf '%s\n' "$bresp" | head -1 | sed 's/.*"rate"://; s/[,}].*//')"
[ "$brate" = "$srate" ] || fail "batch rate $brate != singleton rate $srate"
step "batch predict ok (3 rows, rates match singleton path)"

code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary "$(printf '%s\n%s' '{"src":"a","dst":"b","features":{"C":1}}' '{not json}')" "$url/predict/batch")"
[ "$code" = 400 ] || fail "malformed batch line returned $code, want 400"
curl -s -X POST --data-binary '{not json}' "$url/predict/batch" | grep -q 'line 1' \
    || fail "batch 400 does not name the offending line"
step "malformed batch rejected whole with 400 and line number"

curl -s "$url/metrics" | grep -q '^serve_batch_rows_bucket' || fail "serve_batch_rows histogram not exported"
curl -s "$url/metrics" | grep -q '^serve_batch_requests' || fail "serve_batch_requests counter not exported"
step "batch metrics exported (serve_batch_rows, serve_batch_requests)"

# Shed under overload, deterministically: a daemon with a 1ns queue
# timeout sheds every admitted batch on queue-wait — the whole batch is
# one 429 with Retry-After, never a partial answer, never a 5xx.
step "batch shed under overload (1ns queue timeout daemon)"
addr3="127.0.0.1:$((port+2))"
url3="http://$addr3"
"$tmp/wanperf" serve -registry "$tmp/registry.json" -addr "$addr3" \
    -queue-timeout 1ns -drain-timeout 5s -watch -1s >"$tmp/serve3.log" 2>&1 &
pid3=$!
for i in $(seq 1 50); do
    curl -sf "$url3/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid3" 2>/dev/null || { cat "$tmp/serve3.log" >&2; fail "shed daemon died on startup"; }
    sleep 0.2
done
shed_hdrs="$(curl -s -D - -o /dev/null -X POST -H 'Content-Type: application/x-ndjson' \
    --data-binary "$bbody" "$url3/predict/batch")"
printf '%s' "$shed_hdrs" | grep -q '^HTTP/[0-9.]* 429' || fail "overloaded batch not shed with 429: $shed_hdrs"
printf '%s' "$shed_hdrs" | grep -qi '^Retry-After:' || fail "batch shed missing Retry-After: $shed_hdrs"
curl -s "$url3/metrics" | grep -q 'serve_batch_shed{reason="queue_wait"} 1' \
    || fail "serve_batch_shed{reason=queue_wait} not counted"
kill -TERM "$pid3" 2>/dev/null || true
wait "$pid3" 2>/dev/null || true
pid3=""
step "overloaded batch shed whole with 429 + Retry-After, counted per reason"

# Code-space differential: the same (binned, version-2) registry served
# through a -no-codespace daemon — the float-only pre-upgrade behavior —
# must return BYTE-identical rates to the quantized daemon, across the
# global fallback and a real edge model. This is the upgrade's
# no-silent-divergence guarantee, asserted end to end over HTTP.
step "code-space differential: quantized vs -no-codespace daemon"
addr2="127.0.0.1:$((port+1))"
url2="http://$addr2"
"$tmp/wanperf" serve -registry "$tmp/registry.json" -addr "$addr2" \
    -no-codespace -drain-timeout 5s -watch -1s >"$tmp/serve2.log" 2>&1 &
pid2=$!
for i in $(seq 1 50); do
    curl -sf "$url2/healthz" >/dev/null 2>&1 && break
    kill -0 "$pid2" 2>/dev/null || { cat "$tmp/serve2.log" >&2; fail "float daemon died on startup"; }
    sleep 0.2
done
curl -sf "$url2/healthz" >/dev/null || fail "float daemon healthz never came up"

predict2() { curl -s -X POST -H 'Content-Type: application/json' --data "$1" "$url2/predict"; }
rate_of() { sed 's/.*"rate"://; s/[,}].*//' <<<"$1"; }

# One global-fallback body plus an edge body if the registry has edges.
diff_bodies='{"src":"smoke","dst":"smoke","features":{"C":4,"Nf":100}}
{"src":"smoke","dst":"smoke","features":{"C":8,"P":2,"Nf":7,"Nb":1e8}}'
# encoding/json HTML-escapes ">", so edge keys appear as SRC->DST.
edge_key="$(grep -o '"[^"]*-\\u003e[^"]*"' "$tmp/registry.json" | head -1 | tr -d '"' | sed 's/-\\u003e/->/')"
if [ -n "$edge_key" ]; then
    esrc="${edge_key%%->*}"
    edst="${edge_key##*->}"
    diff_bodies="$diff_bodies
{\"src\":\"$esrc\",\"dst\":\"$edst\",\"features\":{\"C\":4,\"P\":4,\"Nf\":100,\"Nb\":1e9}}"
    step "differential covers edge model $edge_key"
fi
while IFS= read -r dbody; do
    r_quant="$(rate_of "$(predict "$dbody")")"
    r_float="$(rate_of "$(predict2 "$dbody")")"
    [ -n "$r_quant" ] || fail "no rate in quantized response for $dbody"
    [ "$r_quant" = "$r_float" ] || fail "code-space rate $r_quant != float rate $r_float for $dbody"
done <<<"$diff_bodies"
kill -TERM "$pid2" 2>/dev/null || true
wait "$pid2" 2>/dev/null || true
pid2=""
step "quantized and float daemons serve identical rates"

step "corrupt reload: daemon must keep the last good registry"
cp "$tmp/registry.json" "$tmp/registry.json.good"
# version 1 predates the quantized-path promotion gate and fails closed
# under the version-2 format — this reload is rejected on version alone.
echo '{"version":1,"features":["x"]}' >"$tmp/registry.json"
kill -HUP "$pid"; sleep 0.5
resp="$(predict '{"src":"smoke","dst":"smoke","features":{"C":4}}')"
echo "$resp" | grep -q '"generation":1' || fail "corrupt reload changed serving state: $resp"
grep -q "reload rejected" "$tmp/serve.log" || fail "corrupt reload not logged as rejected"
step "corrupt registry rejected, generation 1 still serving"

step "SIGHUP hot reload of a good registry"
cp "$tmp/registry.json.good" "$tmp/registry.json"
kill -HUP "$pid"; sleep 0.5
resp="$(predict '{"src":"smoke","dst":"smoke","features":{"C":4}}')"
echo "$resp" | grep -q '"generation":2' || fail "reload did not promote generation 2: $resp"
curl -s "$url/metrics" | grep -q '^serve_reloads 1' || fail "reload counter not exported"
step "hot reload promoted generation 2"

step "SIGTERM graceful drain"
kill -TERM "$pid"
drain_ok=1
for i in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || { drain_ok=0; break; }
    sleep 0.2
done
[ "$drain_ok" = 0 ] || fail "daemon did not exit within 10s of SIGTERM"
set +e; wait "$pid"; code=$?; set -e
pid=""
[ "$code" = 0 ] || fail "daemon exited $code after drain, want 0"
step "drained cleanly, exit 0"

echo "serve-smoke: PASS" >&2
