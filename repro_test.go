package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/logs"
)

var (
	plOnce  sync.Once
	pl      *Pipeline
	plEdges []EdgeData
	plErr   error
)

func pipeline(t *testing.T) (*Pipeline, []EdgeData) {
	t.Helper()
	plOnce.Do(func() {
		pl, plErr = NewPipeline(SmallConfig())
		if plErr == nil {
			plEdges = pl.StudyEdges()
		}
	})
	if plErr != nil {
		t.Fatal(plErr)
	}
	if len(plEdges) == 0 {
		t.Fatal("no study edges")
	}
	return pl, plEdges
}

func TestNewPipeline(t *testing.T) {
	p, _ := pipeline(t)
	if len(p.Log.Records) == 0 {
		t.Fatal("pipeline produced no transfers")
	}
}

func TestTrainAndPredict(t *testing.T) {
	p, edges := pipeline(t)
	pred, err := TrainEdgePredictor(p, edges[0].Edge)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlannedTransfer{Bytes: 10e9, Files: 100, Dirs: 5, Conc: 4, Par: 4}
	quiet, err := pred.Predict(plan)
	if err != nil {
		t.Fatal(err)
	}
	if quiet <= 0 || quiet > pred.Rmax*1.5 {
		t.Errorf("quiet prediction %.1f outside (0, 1.5·Rmax=%.1f]", quiet, pred.Rmax*1.5)
	}
	// Heavy destination load must not predict a faster transfer.
	plan.Kdin = pred.Rmax
	plan.Sdin = 64
	plan.Gdst = 16
	busy, err := pred.Predict(plan)
	if err != nil {
		t.Fatal(err)
	}
	if busy > quiet {
		t.Errorf("busy prediction %.1f exceeds quiet %.1f", busy, quiet)
	}
}

func TestPredictDuration(t *testing.T) {
	p, edges := pipeline(t)
	pred, err := TrainEdgePredictor(p, edges[0].Edge)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlannedTransfer{Bytes: 10e9, Files: 100, Dirs: 5, Conc: 4, Par: 4}
	rate, _ := pred.Predict(plan)
	dur, err := pred.PredictDuration(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := 10e9 / 1e6 / rate
	if dur != want {
		t.Errorf("duration %.1f inconsistent with rate (want %.1f)", dur, want)
	}
}

func TestPredictValidation(t *testing.T) {
	p, edges := pipeline(t)
	pred, err := TrainEdgePredictor(p, edges[0].Edge)
	if err != nil {
		t.Fatal(err)
	}
	bad := []PlannedTransfer{
		{Bytes: 0, Files: 1, Conc: 1, Par: 1},
		{Bytes: 1e9, Files: 0, Conc: 1, Par: 1},
		{Bytes: 1e9, Files: 1, Conc: 0, Par: 1},
		{Bytes: 1e9, Files: 1, Conc: 1, Par: 0},
	}
	for i, plan := range bad {
		if _, err := pred.Predict(plan); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestTrainUnknownEdge(t *testing.T) {
	p, _ := pipeline(t)
	if _, err := TrainEdgePredictor(p, EdgeKey{Src: "no", Dst: "where"}); err == nil {
		t.Error("unknown edge accepted")
	}
}

func TestAnalyticalBound(t *testing.T) {
	bound, who, err := AnalyticalBound(Measurements{DRmax: 9, MMmax: 8, DWmax: 7})
	if err != nil {
		t.Fatal(err)
	}
	if bound != 7 || who != "disk write" {
		t.Errorf("bound %g by %q", bound, who)
	}
	if _, _, err := AnalyticalBound(Measurements{}); err == nil {
		t.Error("empty measurements accepted")
	}
}

func TestPipelineFromCSVRoundTrip(t *testing.T) {
	p, _ := pipeline(t)
	var buf bytes.Buffer
	if err := p.Log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := logs.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Re-attach the endpoint directory (CSV stores records only).
	for id, ep := range p.Log.Endpoints {
		back.Endpoints[id] = ep
	}
	p2 := PipelineFromLog(back)
	if len(p2.Vecs) != len(p.Vecs) {
		t.Fatalf("round-tripped pipeline has %d vectors, want %d", len(p2.Vecs), len(p.Vecs))
	}
	e1 := p.StudyEdges()
	e2 := p2.StudyEdges()
	if len(e1) != len(e2) {
		t.Fatalf("study edges differ after round trip: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i].Edge != e2[i].Edge {
			t.Errorf("edge %d differs: %s vs %s", i, e1[i].Edge, e2[i].Edge)
		}
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	p, edges := pipeline(t)
	pred, err := TrainEdgePredictor(p, edges[0].Edge)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgePredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Edge != pred.Edge || back.Rmax != pred.Rmax {
		t.Errorf("identity lost: %+v vs %+v", back.Edge, pred.Edge)
	}
	plan := PlannedTransfer{Bytes: 10e9, Files: 100, Dirs: 5, Conc: 4, Par: 4, Kdin: 12}
	want, _ := pred.Predict(plan)
	got, err := back.Predict(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("prediction differs after round trip: %g vs %g", got, want)
	}
}

func TestLoadEdgePredictorGarbage(t *testing.T) {
	if _, err := LoadEdgePredictor(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage accepted")
	}
}
