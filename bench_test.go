// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment (on the reduced workload, so that
// the full suite stays tractable) and logs the regenerated rows once — run
// with `go test -bench=. -benchmem` to both time the pipeline stages and
// see the outputs. Full-scale numbers (DefaultConfig) are recorded in
// EXPERIMENTS.md and regenerable with `wanperf all`.
package repro

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/logs"
	"repro/internal/logs/colfmt"
	"repro/internal/ml/gbt"
	"repro/internal/ml/linreg"
	"repro/internal/simulate"
	"repro/internal/stats"
)

var (
	benchOnce  sync.Once
	benchPipe  *core.Pipeline
	benchEdges []core.EdgeData
	benchErr   error
)

func benchPipeline(b *testing.B) (*core.Pipeline, []core.EdgeData) {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe, benchErr = core.Run(simulate.SmallConfig())
		if benchErr == nil {
			benchEdges = benchPipe.StudyEdges()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	if len(benchEdges) == 0 {
		b.Fatal("no study edges")
	}
	return benchPipe, benchEdges
}

var logOnce sync.Map

// logOncePerBench emits the regenerated experiment output a single time
// per benchmark name, no matter how many iterations run.
func logOncePerBench(b *testing.B, out string) {
	if _, done := logOnce.LoadOrStore(b.Name(), true); !done {
		b.Logf("\n%s", out)
	}
}

// BenchmarkTable1 regenerates the ESnet-testbed campaign (Rmax, DWmax,
// DRmax, MMmax per edge and the Equation 1 min rule).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.Table1()
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderTable1(rows))
	}
}

// BenchmarkTable3 regenerates the edge-length percentile comparison.
func BenchmarkTable3(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := p.Table3(edges)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderTable3(rows))
	}
}

// BenchmarkTable4 regenerates the edge-type share comparison.
func BenchmarkTable4(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := p.Table4(edges)
		logOncePerBench(b, core.RenderTable4(rows))
	}
}

// BenchmarkTable5 regenerates the Pearson-vs-MIC correlation study on the
// busiest edge (the paper shows four example edges).
func BenchmarkTable5(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := p.Table5(edges[:1])
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderTable5(rows))
	}
}

// BenchmarkFig3 regenerates the controlled-testbed rate-vs-load sweep.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := core.Fig3(60, 42)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderLoadCurves(curves))
	}
}

// BenchmarkFig4 regenerates aggregate-rate-vs-concurrency with Weibull fits
// for the four busiest endpoints.
func BenchmarkFig4(b *testing.B) {
	p, _ := benchPipeline(b)
	eps := p.BusiestEndpoints(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := p.Fig4(eps)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderFig4(curves))
	}
}

// BenchmarkFig5 regenerates the file-characteristics buckets on the
// busiest edge.
func BenchmarkFig5(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, err := p.Fig5(edges[0], 20)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderFig5(buckets))
	}
}

// BenchmarkFig6 regenerates the size-vs-distance scatter summary.
func BenchmarkFig6(b *testing.B) {
	p, _ := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, summary := p.Fig6()
		logOncePerBench(b, core.RenderFig6(summary))
	}
}

// BenchmarkFig8 regenerates the production rate-vs-load curves.
func BenchmarkFig8(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves := p.Fig8(edges, 4)
		logOncePerBench(b, core.RenderLoadCurves(curves))
	}
}

// BenchmarkFig9To12 trains the per-edge linear and nonlinear models on the
// busiest edge, producing the coefficient map (Fig 9), error distributions
// (Fig 10), MdAPEs (Fig 11), and importance map (Fig 12).
func BenchmarkFig9To12(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.EvaluateEdge(edges[0])
		if err != nil {
			b.Fatal(err)
		}
		results := []core.EdgeModelResult{res}
		logOncePerBench(b, "Fig 9:\n"+core.RenderFig9(results)+
			"Fig 10:\n"+core.RenderFig10(results)+
			"Fig 11:\n"+core.RenderFig11(results)+
			"Fig 12:\n"+core.RenderFig12(results))
	}
}

// BenchmarkFig11Headline trains models on several edges and reports the
// aggregate MdAPE comparison (the paper's 7.0% vs 4.6% headline).
func BenchmarkFig11Headline(b *testing.B) {
	p, edges := benchPipeline(b)
	n := len(edges)
	if n > 4 {
		n = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := p.EvaluateEdges(edges[:n])
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderFig11(results))
	}
}

// BenchmarkGlobalModel regenerates the §5.4 single-model-for-all-edges
// comparison.
func BenchmarkGlobalModel(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.GlobalModel(edges)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderGlobal(res))
	}
}

// BenchmarkFig13 regenerates the load-threshold sweep on one edge.
func BenchmarkFig13(b *testing.B) {
	p, _ := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := p.Fig13(core.MinEdgeTransfers, 1)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderFig13(rows))
	}
}

// BenchmarkLMT regenerates the §5.5.2 storage-monitoring experiment at
// reduced scale (120 of the paper's 666 test transfers).
func BenchmarkLMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.LMTExperiment(120, 42)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderLMT(res))
	}
}

// ---- Engine-scale benchmarks ----
//
// BenchmarkEngineRun{Small,Medium,Large} time the simulator's event core
// alone — workload generation happens once outside the timer — at roughly
// 1k, 10k, and 50k transfers. They are the scaling story for the indexed
// event heap and incremental fair-share resolution: the paper's production
// log has millions of transfers, so log scale is bounded by engine
// throughput.

// engineRunConfig builds a workload configuration of the requested scale:
// edges spread over many hub/personal endpoints so the resource-sharing
// graph has many connected components, the regime a production fabric
// (many site pairs, few globally shared resources) actually runs in.
func engineRunConfig(heavy int, mean float64, tail, hubs, personal int, days float64) simulate.Config {
	return simulate.Config{
		Seed:               20260805,
		Horizon:            days * 24 * 3600,
		HeavyEdges:         heavy,
		HeavyTransfersMean: mean,
		TailEdges:          tail,
		TailTransfersMax:   6,
		HubEndpoints:       hubs,
		PersonalEndpoints:  personal,
		NoisyFrac:          0.4,
		BurstMax:           4,
	}
}

func benchEngineRun(b *testing.B, cfg simulate.Config) {
	g, err := simulate.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	logOncePerBench(b, fmt.Sprintf("%s: %d transfers over %d endpoints",
		b.Name(), len(g.Specs), len(g.World.Endpoints)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulate.NewEngine(g.World, cfg.Seed+1)
		eng.Submit(g.Specs...)
		l, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkEngineRunSmall simulates ~1k transfers.
func BenchmarkEngineRunSmall(b *testing.B) {
	benchEngineRun(b, engineRunConfig(4, 250, 20, 8, 6, 6))
}

// BenchmarkEngineRunMedium simulates ~10k transfers.
func BenchmarkEngineRunMedium(b *testing.B) {
	benchEngineRun(b, engineRunConfig(12, 800, 60, 12, 12, 15))
}

// BenchmarkEngineRunLarge simulates ~50k transfers.
func BenchmarkEngineRunLarge(b *testing.B) {
	benchEngineRun(b, engineRunConfig(36, 1400, 140, 24, 24, 30))
}

// ---- Shard-scaling benchmarks ----
//
// BenchmarkEngineShardLarge{1,2,4,Max} run the same clustered Large world
// (simulate.LargeConfig: 24 disconnected clusters, ~300k transfers) at
// increasing shard counts. Sharding wins twice: each sub-engine's
// per-event work scans only its own components' active transfers (an
// algorithmic gain that holds even on one CPU), and the sub-engines run
// over internal/pool workers (a parallel gain on multi-core machines).
// Output is byte-identical at every shard count — the differential and
// property tests pin that; these benchmarks record what it costs.

func benchEngineShards(b *testing.B, shards int) {
	cfg := simulate.LargeConfig()
	g, err := simulate.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	logOncePerBench(b, fmt.Sprintf("%s: %d transfers over %d endpoints, %d clusters, shards=%d",
		b.Name(), len(g.Specs), len(g.World.Endpoints), cfg.Clusters, shards))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simulate.NewEngine(g.World, cfg.Seed+1)
		eng.SetShards(shards)
		eng.Submit(g.Specs...)
		l, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

func BenchmarkEngineShardLarge1(b *testing.B) { benchEngineShards(b, 1) }
func BenchmarkEngineShardLarge2(b *testing.B) { benchEngineShards(b, 2) }
func BenchmarkEngineShardLarge4(b *testing.B) { benchEngineShards(b, 4) }

// BenchmarkEngineShardLargeMax runs one shard per cluster (or per
// GOMAXPROCS, whichever is larger — extra shards beyond the component
// count are clamped by the engine).
func BenchmarkEngineShardLargeMax(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	if shards < simulate.LargeConfig().Clusters {
		shards = simulate.LargeConfig().Clusters
	}
	benchEngineShards(b, shards)
}

// ---- Columnar vs CSV log I/O ----

// benchLogData generates one small log and serializes it both ways.
func benchLogData(b *testing.B) (csvData, colData []byte, records int) {
	b.Helper()
	l, _, err := simulate.GenerateLog(simulate.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	var csvBuf, colBuf bytes.Buffer
	if err := l.WriteCSV(&csvBuf); err != nil {
		b.Fatal(err)
	}
	if err := colfmt.WriteLog(&colBuf, l); err != nil {
		b.Fatal(err)
	}
	return csvBuf.Bytes(), colBuf.Bytes(), len(l.Records)
}

// BenchmarkLogReadCSV measures the strict CSV reader (the compatibility
// path: strconv row by row).
func BenchmarkLogReadCSV(b *testing.B) {
	data, _, n := benchLogData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := logs.ReadCSV(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) != n {
			b.Fatal("lost records")
		}
	}
}

// BenchmarkLogReadColumnar measures the columnar reader materializing
// the same log (fixed-width column decode + CRC check).
func BenchmarkLogReadColumnar(b *testing.B) {
	_, data, n := benchLogData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := colfmt.ReadLog(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) != n {
			b.Fatal("lost records")
		}
	}
}

// BenchmarkLogWriteCSV and BenchmarkLogWriteColumnar time serializing
// the same in-memory log both ways (strconv formatting vs fixed-width
// column copies).
func BenchmarkLogWriteCSV(b *testing.B) {
	l, _, err := simulate.GenerateLog(simulate.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := l.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkLogWriteColumnar(b *testing.B) {
	l, _, err := simulate.GenerateLog(simulate.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := colfmt.WriteLog(&buf, l); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkLogReadColumnarTable measures the cheapest columnar path:
// straight to column views, no row materialization (what
// features.EngineerColumns consumes).
func BenchmarkLogReadColumnarTable(b *testing.B) {
	_, data, n := benchLogData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, _, err := colfmt.ReadTable(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if t.Len() != n {
			b.Fatal("lost records")
		}
	}
}

// ---- Paper-scale end to end ----

// BenchmarkPaperScaleXLarge is the tentpole demonstration: generate the
// XLarge world (24 clusters, >1M transfers), simulate it sharded, write
// and re-read the log through the columnar container, and engineer the
// full feature set from column views. Run with -benchtime 1x (it is the
// whole pipeline); scripts/bench.sh records it in the shard-sim artifact.
func BenchmarkPaperScaleXLarge(b *testing.B) {
	cfg := simulate.XLargeConfig()
	cfg.Shards = cfg.Clusters
	for i := 0; i < b.N; i++ {
		l, _, err := simulate.GenerateLog(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) < 1_000_000 {
			b.Fatalf("XLarge produced only %d transfers", len(l.Records))
		}
		var buf bytes.Buffer
		if err := colfmt.WriteLog(&buf, l); err != nil {
			b.Fatal(err)
		}
		tab, _, err := colfmt.ReadTable(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		vecs := features.EngineerColumns(tab)
		if len(vecs) != len(l.Records) {
			b.Fatal("engineering lost records")
		}
		logOncePerBench(b, fmt.Sprintf("%s: %d transfers simulated, %d MB columnar, %d vectors",
			b.Name(), len(l.Records), buf.Len()/(1<<20), len(vecs)))
	}
}

// ---- Component micro-benchmarks ----

// BenchmarkSimulateSmall measures end-to-end log generation.
func BenchmarkSimulateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, _, err := simulate.GenerateLog(simulate.SmallConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Records) == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkFeatureEngineering measures the §4 overlap analysis.
func BenchmarkFeatureEngineering(b *testing.B) {
	l, _, err := simulate.GenerateLog(simulate.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecs := features.Engineer(l)
		if len(vecs) != len(l.Records) {
			b.Fatal("engineering lost records")
		}
	}
}

// BenchmarkGBTTrain measures nonlinear model training on one edge.
func BenchmarkGBTTrain(b *testing.B) {
	p, edges := benchPipeline(b)
	vecs := p.VectorsAt(edges[0].Qualifying)
	ds, err := features.Dataset(vecs, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbt.Train(ds, gbt.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBTTrainHist measures histogram-binned training (Bins: 256)
// on the same single-edge workload as BenchmarkGBTTrain, so the two
// benchmarks compare the histogram and exact presorted split searches
// directly.
func BenchmarkGBTTrainHist(b *testing.B) {
	p, edges := benchPipeline(b)
	vecs := p.VectorsAt(edges[0].Qualifying)
	ds, err := features.Dataset(vecs, false)
	if err != nil {
		b.Fatal(err)
	}
	params := gbt.DefaultParams()
	params.Bins = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbt.Train(ds, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictAll measures flat batch inference: scoring every row of
// one edge's feature matrix through the SoA forest in a single call.
func BenchmarkPredictAll(b *testing.B) {
	p, edges := benchPipeline(b)
	vecs := p.VectorsAt(edges[0].Qualifying)
	ds, err := features.Dataset(vecs, false)
	if err != nil {
		b.Fatal(err)
	}
	params := gbt.DefaultParams()
	params.Bins = 256
	m, err := gbt.Train(ds, params)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PredictAll(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinregFit measures linear model fitting on one edge.
func BenchmarkLinregFit(b *testing.B) {
	p, edges := benchPipeline(b)
	vecs := p.VectorsAt(edges[0].Qualifying)
	ds, err := features.Dataset(vecs, false)
	if err != nil {
		b.Fatal(err)
	}
	ds, _ = ds.DropLowVariance(1e-9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linreg.Fit(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMIC measures the maximal information coefficient on one
// feature/rate pair.
func BenchmarkMIC(b *testing.B) {
	p, edges := benchPipeline(b)
	vecs := p.VectorsAt(edges[0].Qualifying)
	x := make([]float64, len(vecs))
	y := make([]float64, len(vecs))
	for i := range vecs {
		x[i] = vecs[i].Kdin
		y[i] = vecs[i].Rate
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.MIC(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures single-transfer prediction latency (the
// operation a scheduler would call in its inner loop).
func BenchmarkPredict(b *testing.B) {
	p, edges := benchPipeline(b)
	pred, err := TrainEdgePredictor(p, edges[0].Edge)
	if err != nil {
		b.Fatal(err)
	}
	plan := PlannedTransfer{Bytes: 10e9, Files: 100, Dirs: 5, Conc: 4, Par: 4, Kdin: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence the fmt import when logs are elided.

// BenchmarkSection32 regenerates the §3.2 production-edge analytical study
// (Equation 1 bands and the bottleneck taxonomy).
func BenchmarkSection32(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, summary, err := p.Section32(edges)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderSection32(rows, summary))
	}
}

// BenchmarkAblation regenerates the feature-group ablation study on two
// edges (which feature groups carry the model's accuracy).
func BenchmarkAblation(b *testing.B) {
	p, edges := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := p.Ablate(edges, 2)
		if err != nil {
			b.Fatal(err)
		}
		logOncePerBench(b, core.RenderAblation(rows))
	}
}
